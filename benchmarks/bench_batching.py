"""Benchmark: per-update vs. coalesced ``SLen`` maintenance.

For each update mix in ``MIXES`` (balanced / insert-heavy / delete-heavy
— the ROADMAP's update-mix axis; deletions are where coalescing wins
big) and each batch size in ``BATCH_SIZES`` the script generates one
update workload on a synthetic social graph and times

* **per-update** — one :func:`repro.spl.incremental.update_slen` call per
  data update (the INC-GPNM shape), and
* **coalesced** — :func:`repro.batching.compiler.compile_batch` followed
  by one :func:`repro.batching.coalesce.coalesce_slen` pass (the
  ``coalesce_updates`` shape),

verifying after every run that both paths leave the matrix in the exact
from-scratch state.  Results (median over ``ROUNDS`` runs) are written to
``BENCH_batching.json`` next to this file.

Run with::

    PYTHONPATH=src python benchmarks/bench_batching.py
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path

from repro.batching.coalesce import coalesce_slen
from repro.batching.compiler import compile_batch
from repro.spl.incremental import update_slen
from repro.spl.matrix import SLenMatrix
from repro.workloads.generators import SocialGraphSpec, generate_social_graph
from repro.workloads.pattern_gen import PatternSpec, generate_pattern
from repro.workloads.update_gen import UpdateWorkloadSpec, generate_update_batch

BATCH_SIZES = (1, 8, 64, 256)
MIXES = ("balanced", "insert-heavy", "delete-heavy")
ROUNDS = 5
#: Matches the experiment harness's bounded distance index.
HORIZON = 4
OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_batching.json"


def build_instance():
    data = generate_social_graph(
        SocialGraphSpec(name="bench-batching", num_nodes=320, num_edges=1500, seed=11)
    )
    pattern = generate_pattern(
        PatternSpec(num_nodes=6, num_edges=6, labels=("PM", "SE", "TE"), seed=11)
    )
    return data, pattern


def workload(data, pattern, batch_size: int, mix: str):
    return generate_update_batch(
        data,
        pattern,
        UpdateWorkloadSpec(
            num_pattern_updates=0,
            num_data_updates=batch_size,
            seed=23 + batch_size,
            mix=mix,
        ),
    ).data_updates()


def time_per_update(data, updates) -> float:
    graph = data.copy()
    matrix = SLenMatrix.from_graph(graph, horizon=HORIZON)
    started = time.perf_counter()
    for update in updates:
        update.apply(graph)
        update_slen(matrix, graph, update)
    elapsed = time.perf_counter() - started
    assert matrix == SLenMatrix.from_graph(graph, horizon=HORIZON)
    return elapsed


def time_coalesced(data, updates) -> tuple[float, int]:
    graph = data.copy()
    matrix = SLenMatrix.from_graph(graph, horizon=HORIZON)
    started = time.perf_counter()
    compiled = compile_batch(updates)
    surviving = compiled.data_updates()
    for update in surviving:
        update.apply(graph)
    coalesce_slen(matrix, graph, surviving)
    elapsed = time.perf_counter() - started
    assert matrix == SLenMatrix.from_graph(graph, horizon=HORIZON)
    return elapsed, compiled.report.eliminated


def main() -> int:
    data, pattern = build_instance()
    results = []
    for mix in MIXES:
        for batch_size in BATCH_SIZES:
            updates = workload(data, pattern, batch_size, mix)
            per_update_times = []
            coalesced_times = []
            eliminated = 0
            for _ in range(ROUNDS):
                per_update_times.append(time_per_update(data, updates))
                elapsed, eliminated = time_coalesced(data, updates)
                coalesced_times.append(elapsed)
            per_update = statistics.median(per_update_times)
            coalesced = statistics.median(coalesced_times)
            row = {
                "mix": mix,
                "batch_size": batch_size,
                "applied_updates": len(updates),
                "compiled_away": eliminated,
                "per_update_seconds": round(per_update, 6),
                "coalesced_seconds": round(coalesced, 6),
                "speedup": round(per_update / coalesced, 3) if coalesced else None,
            }
            results.append(row)
            print(
                f"mix={mix:13s} batch={batch_size:4d}  "
                f"per-update={per_update * 1e3:9.2f} ms  "
                f"coalesced={coalesced * 1e3:9.2f} ms  speedup={row['speedup']}x",
                file=sys.stderr,
            )
    payload = {
        "benchmark": "per-update vs coalesced SLen maintenance",
        "graph": {"nodes": data.number_of_nodes, "edges": data.number_of_edges},
        "horizon": HORIZON,
        "rounds": ROUNDS,
        "results": results,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {OUTPUT}", file=sys.stderr)
    # Coalescing earns its keep on deletion-bearing batches well above
    # the fallback threshold; batch 64 sits at par (within noise of 1x),
    # so gating there would flake, and insert-heavy streams are a
    # documented non-win (the coalesced sweep does the same relaxations
    # plus attribution bookkeeping).  Only the decisive cells are gated.
    gated = [
        row
        for row in results
        if row["mix"] != "insert-heavy" and row["batch_size"] >= 256
    ]
    if any(row["speedup"] is not None and row["speedup"] < 1.0 for row in gated):
        print(
            "WARNING: coalesced slower than per-update on a large deletion-bearing batch",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
