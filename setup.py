"""Legacy setup shim.

The project is fully described by ``pyproject.toml``; this file exists so
that ``python setup.py develop`` works in offline environments where the
``wheel`` package (needed by PEP 660 editable installs) is unavailable.
"""

from setuptools import setup

setup()
