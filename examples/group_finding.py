"""Group finding in a dynamic collaboration network (the paper's motivating use case).

An IT organisation wants to staff a project with a project manager who
works closely with a software engineer and a support person, where the
engineer collaborates with a tester.  The collaboration graph changes
continuously (people join, leave, and new collaborations form), and the
staffing query must stay fresh without recomputing from scratch.

The script generates a synthetic organisation, expresses the staffing
need as a pattern graph, answers the initial query, then streams several
rounds of updates through UA-GPNM and prints how the candidate pools
evolve and how much work each round required.

Run with:  python examples/group_finding.py
"""

from __future__ import annotations

from repro import PatternGraph, UAGPNM
from repro.workloads.generators import SocialGraphSpec, generate_social_graph
from repro.workloads.update_gen import UpdateWorkloadSpec, generate_update_batch


def build_staffing_pattern() -> PatternGraph:
    """A PM within 2 hops of an SE and an S; the SE within 3 hops of a TE."""
    pattern = PatternGraph()
    pattern.add_node("manager", "PM")
    pattern.add_node("engineer", "SE")
    pattern.add_node("tester", "TE")
    pattern.add_node("support", "S")
    pattern.add_edge("manager", "engineer", 2)
    pattern.add_edge("manager", "support", 3)
    pattern.add_edge("engineer", "tester", 3)
    return pattern


def main() -> None:
    organisation = generate_social_graph(
        SocialGraphSpec(name="acme", num_nodes=150, num_edges=700, seed=7)
    )
    pattern = build_staffing_pattern()
    engine = UAGPNM(pattern, organisation)

    print(
        f"Organisation: {organisation.number_of_nodes} people, "
        f"{organisation.number_of_edges} collaborations"
    )
    print("Initial candidate pools:")
    for role, matches in engine.initial_result.items():
        print(f"  {role:9s}: {len(matches)} candidates")

    for round_number in range(1, 4):
        batch = generate_update_batch(
            engine.data,
            engine.pattern,
            UpdateWorkloadSpec(num_pattern_updates=0, num_data_updates=20, seed=round_number),
        )
        outcome = engine.subsequent_query(batch)
        stats = outcome.stats
        print(
            f"\nRound {round_number}: {stats.updates_processed} graph updates, "
            f"{stats.eliminated_updates} eliminated, "
            f"{stats.refinement_passes} matching pass(es), "
            f"{stats.elapsed_seconds * 1000:.1f} ms"
        )
        for role, matches in outcome.result.items():
            print(f"  {role:9s}: {len(matches)} candidates")


if __name__ == "__main__":
    main()
