"""Expert recommendation with evolving query patterns — comparing the methods.

The second application the paper motivates: a recommendation service
keeps a pattern describing the kind of expert group a user is after, and
*both* the social graph and the pattern change between queries (the user
refines their request, people join and leave).  The script answers the
same stream of subsequent queries with all four algorithms and reports
query processing time and the amount of work each performed — a
miniature version of the paper's Table XI on a single dataset.

Run with:  python examples/expert_recommendation.py
"""

from __future__ import annotations

from repro.algorithms import EHGPNM, IncGPNM, UAGPNM
from repro.matching.gpnm import gpnm_query
from repro.spl.matrix import SLenMatrix
from repro.workloads.datasets import load_dataset
from repro.workloads.generators import DEFAULT_LABEL_ORDER
from repro.workloads.pattern_gen import PatternSpec, generate_pattern
from repro.workloads.update_gen import UpdateWorkloadSpec, generate_update_batch

METHODS = (
    ("UA-GPNM", lambda p, d, **kw: UAGPNM(p, d, use_partition=True, **kw)),
    ("UA-GPNM-NoPar", lambda p, d, **kw: UAGPNM(p, d, use_partition=False, **kw)),
    ("EH-GPNM", EHGPNM),
    ("INC-GPNM", IncGPNM),
)


def main() -> None:
    data = load_dataset("DBLP", scale="quick")
    labels = tuple(label for label in DEFAULT_LABEL_ORDER if label in data.labels())
    pattern = generate_pattern(
        PatternSpec(
            num_nodes=8,
            num_edges=8,
            labels=labels,
            min_bound=2,
            max_bound=3,
            star_probability=0.0,
            respect_label_order=True,
            seed=41,
        )
    )
    # Share one initial-query state across the methods, as the experiment
    # harness does, so only the subsequent queries are compared.
    slen = SLenMatrix.from_graph(data, horizon=4)
    iquery = gpnm_query(pattern, data, slen, enforce_totality=False)
    batch = generate_update_batch(
        data, pattern, UpdateWorkloadSpec(num_pattern_updates=8, num_data_updates=40, seed=3)
    )

    print(
        f"DBLP stand-in: {data.number_of_nodes} nodes / {data.number_of_edges} edges; "
        f"pattern (8, 8); dG = (8, 40)\n"
    )
    print(f"{'method':15s} {'time (ms)':>10s} {'passes':>7s} {'eliminated':>11s}")
    baseline = None
    for name, factory in METHODS:
        engine = factory(pattern, data, precomputed_slen=slen, precomputed_relation=iquery)
        outcome = engine.subsequent_query(batch)
        stats = outcome.stats
        if baseline is None:
            baseline = outcome.result
        else:
            assert outcome.result == baseline, "methods disagree on the matching result"
        print(
            f"{name:15s} {stats.elapsed_seconds * 1000:10.1f} "
            f"{stats.refinement_passes:7d} {stats.eliminated_updates:11d}"
        )
    print("\nAll four methods returned identical matching results.")


if __name__ == "__main__":
    main()
