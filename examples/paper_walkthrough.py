"""Walk through the paper's worked example, printing Tables III-IX and Figure 3.

Useful as a readable trace of what the library computes at each step of
Section IV and Section V: the SLen matrix, the per-update candidate and
affected sets, the cross-graph elimination check, the EH-Tree, and the
partition-based shortest path computation of Figure 4.

Run with:  python examples/paper_walkthrough.py
"""

from __future__ import annotations

from repro import paper_example
from repro.elimination.detector import detect_all
from repro.elimination.eh_tree import EHTree
from repro.matching.affected import affected_set_from_delta
from repro.matching.candidates import candidate_set
from repro.matching.gpnm import gpnm_query
from repro.partition.label_partition import LabelPartition
from repro.partition.partitioned_spl import paper_subprocess_1, paper_subprocess_2
from repro.spl.incremental import update_slen
from repro.spl.matrix import INF, SLenMatrix


def print_matrix(title, slen, nodes):
    print(f"\n{title}")
    header = "      " + " ".join(f"{node:>4s}" for node in nodes)
    print(header)
    for source in nodes:
        row = []
        for target in nodes:
            value = slen.distance(source, target)
            row.append("   ∞" if value == INF else f"{int(value):4d}")
        print(f"{source:>5s} " + " ".join(row))


def main() -> None:
    data = paper_example.figure1_data_graph()
    pattern = paper_example.figure1_pattern_graph()
    nodes = ["PM1", "PM2", "SE1", "SE2", "S1", "TE1", "TE2", "DB1"]

    slen = SLenMatrix.from_graph(data)
    print_matrix("Table III — SLen of the original data graph", slen, nodes)

    iquery = gpnm_query(pattern, data, slen, enforce_totality=False)
    print("\nTable I — initial node matching result:")
    for pattern_node in ("PM", "SE", "S", "TE"):
        print(f"  {pattern_node:3s} -> {sorted(iquery.matches(pattern_node))}")

    names = paper_example.example2_update_names()
    candidates = [
        candidate_set(names["UP1"], pattern, data, slen, iquery),
        candidate_set(names["UP2"], pattern, data, slen, iquery),
    ]
    print("\nTable IV — candidate nodes of the pattern updates:")
    for candidate in candidates:
        print(f"  {candidate.update.source}->{candidate.update.target}: "
              f"{sorted(candidate.all_nodes)}")

    affected = []
    for key in ("UD1", "UD2"):
        names[key].apply(data)
        delta = update_slen(slen, data, names[key])
        affected.append(affected_set_from_delta(names[key], delta))
        print_matrix(f"Table {'V' if key == 'UD1' else 'VI'} — SLen after {key}", slen, nodes)
    print("\nTable VII — affected nodes of the data updates:")
    for entry in affected:
        print(f"  {entry.update.source}->{entry.update.target}: {sorted(entry.nodes)}")

    analysis = detect_all(candidates, affected, slen)
    tree = EHTree.build(analysis, [names["UD1"], names["UD2"], names["UP1"], names["UP2"]])
    print("\nFigure 3 — the EH-Tree:")
    print(tree.to_ascii())

    figure4 = paper_example.figure4_data_graph()
    partition = LabelPartition.from_graph(figure4)
    print("\nTable VIII — intra-partition distances of P_SE:")
    for (source, target), value in sorted(paper_subprocess_1(figure4, partition, "SE").items()):
        print(f"  {source} -> {target}: {'∞' if value == INF else int(value)}")
    print("\nTable IX — distances from P_SE to P_TE:")
    for (source, target), value in sorted(paper_subprocess_2(figure4, partition, "SE", "TE").items()):
        print(f"  {source} -> {target}: {'∞' if value == INF else int(value)}")


if __name__ == "__main__":
    main()
