"""Quickstart: the paper's running example, end to end.

Builds the Figure 1 data graph and pattern graph, answers the initial
GPNM query (Table I), applies the four updates of Example 2 / Figure 2
and answers the subsequent query with UA-GPNM, printing the EH-Tree the
algorithm built along the way (Figure 3).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import UAGPNM, paper_example


def main() -> None:
    data = paper_example.figure1_data_graph()
    pattern = paper_example.figure1_pattern_graph()

    engine = UAGPNM(pattern, data)

    print("Initial query (Table I):")
    for pattern_node, matches in engine.initial_result.items():
        print(f"  {pattern_node:3s} -> {sorted(matches)}")

    batch = paper_example.example2_updates()
    print(f"\nApplying {len(batch)} updates (UD1, UD2, UP1, UP2 of Example 2)...")
    outcome = engine.subsequent_query(batch)

    print("\nSubsequent query:")
    for pattern_node, matches in outcome.result.items():
        print(f"  {pattern_node:3s} -> {sorted(matches)}")

    stats = outcome.stats
    print(
        f"\nWork done: {stats.refinement_passes} incremental pass(es), "
        f"{stats.eliminated_updates} of {stats.updates_processed} updates eliminated."
    )
    print("\nEH-Tree (Figure 3):")
    print(outcome.eh_tree.to_ascii())


if __name__ == "__main__":
    main()
