#!/usr/bin/env bash
# Run a pytest selection and fail if ANY test in it was skipped.
#
# The differential harness and the strategy-equivalence suite skip
# their dense halves only when numpy is missing; on CI that means the
# dense backend silently went untested, so a skip must fail the job.
# The calibration-convergence suite is currently skip-free and rides
# along so a future skip marker cannot silently disable it either.
#
# Usage: pytest_no_skip.sh <label> <pytest-path> [<pytest-path> ...]
set -euo pipefail

label="$1"
shift
log="$(mktemp)"
trap 'rm -f "$log"' EXIT

PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}" python -m pytest "$@" -q -rs | tee "$log"

if grep -qE "[0-9]+ skipped" "$log"; then
  echo "::error::${label} suite was (partially) skipped"
  exit 1
fi
