"""Unit tests for the DataGraph substrate."""

import pytest

from repro.graph.digraph import DataGraph
from repro.graph.errors import (
    DuplicateEdgeError,
    DuplicateNodeError,
    MissingEdgeError,
    MissingNodeError,
)


@pytest.fixture
def small() -> DataGraph:
    g = DataGraph()
    g.add_node("a", "X")
    g.add_node("b", "X", "extra")
    g.add_node("c", "Y")
    g.add_edge("a", "b")
    g.add_edge("b", "c")
    return g


class TestNodes:
    def test_add_and_contains(self, small):
        assert small.has_node("a")
        assert "a" in small
        assert not small.has_node("zzz")

    def test_counts(self, small):
        assert small.number_of_nodes == 3
        assert len(small) == 3
        assert small.number_of_edges == 2

    def test_labels(self, small):
        assert small.primary_label("a") == "X"
        assert small.labels_of("b") == ("X", "extra")
        assert small.has_label("b", "extra")
        assert not small.has_label("a", "extra")
        assert small.labels() == {"X", "Y", "extra"}

    def test_label_index(self, small):
        assert small.nodes_with_label("X") == {"a", "b"}
        assert small.nodes_with_label("Y") == {"c"}
        assert small.nodes_with_label("missing") == frozenset()

    def test_duplicate_node_rejected(self, small):
        with pytest.raises(DuplicateNodeError):
            small.add_node("a", "X")

    def test_node_requires_label(self):
        g = DataGraph()
        with pytest.raises(ValueError):
            g.add_node("a")

    def test_remove_node_removes_edges_and_labels(self, small):
        small.remove_node("b")
        assert not small.has_node("b")
        assert not small.has_edge("a", "b")
        assert not small.has_edge("b", "c")
        assert small.number_of_edges == 0
        assert "b" not in small.nodes_with_label("X")

    def test_remove_missing_node(self, small):
        with pytest.raises(MissingNodeError):
            small.remove_node("zzz")

    def test_label_of_missing_node(self, small):
        with pytest.raises(MissingNodeError):
            small.labels_of("zzz")


class TestEdges:
    def test_add_and_query(self, small):
        assert small.has_edge("a", "b")
        assert not small.has_edge("b", "a")

    def test_successors_predecessors(self, small):
        assert small.successors("a") == {"b"}
        assert small.predecessors("c") == {"b"}
        assert small.successors_view("b") == {"c"}
        assert small.predecessors_view("b") == {"a"}

    def test_degrees(self, small):
        assert small.out_degree("a") == 1
        assert small.in_degree("a") == 0
        assert small.in_degree("b") == 1

    def test_duplicate_edge_rejected(self, small):
        with pytest.raises(DuplicateEdgeError):
            small.add_edge("a", "b")

    def test_edge_to_missing_node(self, small):
        with pytest.raises(MissingNodeError):
            small.add_edge("a", "zzz")

    def test_remove_edge(self, small):
        small.remove_edge("a", "b")
        assert not small.has_edge("a", "b")
        assert small.number_of_edges == 1

    def test_remove_missing_edge(self, small):
        with pytest.raises(MissingEdgeError):
            small.remove_edge("c", "a")

    def test_edges_iteration(self, small):
        assert set(small.edges()) == {("a", "b"), ("b", "c")}


class TestCopyAndEquality:
    def test_copy_is_independent(self, small):
        clone = small.copy()
        assert clone == small
        clone.add_node("d", "Z")
        clone.add_edge("c", "d")
        assert not small.has_node("d")
        assert clone != small

    def test_constructor_from_mappings(self):
        g = DataGraph({"a": "X", "b": ("Y", "Z")}, [("a", "b")])
        assert g.labels_of("b") == ("Y", "Z")
        assert g.has_edge("a", "b")

    def test_unhashable(self, small):
        with pytest.raises(TypeError):
            hash(small)

    def test_repr_mentions_sizes(self, small):
        assert "nodes=3" in repr(small)
