"""Unit tests for the PatternGraph substrate."""

import math

import pytest

from repro.graph.errors import (
    DuplicateEdgeError,
    DuplicateNodeError,
    InvalidBoundError,
    MissingEdgeError,
    MissingNodeError,
)
from repro.graph.pattern import STAR, PatternGraph, normalise_bound


@pytest.fixture
def pattern() -> PatternGraph:
    p = PatternGraph()
    p.add_node("PM", "PM")
    p.add_node("SE", "SE")
    p.add_node("TE", "TE")
    p.add_edge("PM", "SE", 3)
    p.add_edge("SE", "TE", "*")
    return p


class TestBounds:
    @pytest.mark.parametrize("bound,expected", [(1, 1), (5, 5), ("*", STAR), (math.inf, STAR)])
    def test_normalise_valid(self, bound, expected):
        assert normalise_bound(bound) == expected

    @pytest.mark.parametrize("bound", [0, -1, 2.5, "three", None, True])
    def test_normalise_invalid(self, bound):
        with pytest.raises(InvalidBoundError):
            normalise_bound(bound)

    def test_bound_lookup(self, pattern):
        assert pattern.bound("PM", "SE") == 3
        assert pattern.bound("SE", "TE") is STAR

    def test_set_bound(self, pattern):
        pattern.set_bound("PM", "SE", 5)
        assert pattern.bound("PM", "SE") == 5

    def test_set_bound_missing_edge(self, pattern):
        with pytest.raises(MissingEdgeError):
            pattern.set_bound("TE", "PM", 2)


class TestStructure:
    def test_counts(self, pattern):
        assert pattern.number_of_nodes == 3
        assert pattern.number_of_edges == 2

    def test_labels(self, pattern):
        assert pattern.label_of("PM") == "PM"
        assert pattern.labels() == {"PM", "SE", "TE"}

    def test_invalid_label(self):
        p = PatternGraph()
        with pytest.raises(ValueError):
            p.add_node("x", "")

    def test_duplicate_node(self, pattern):
        with pytest.raises(DuplicateNodeError):
            pattern.add_node("PM", "PM")

    def test_duplicate_edge(self, pattern):
        with pytest.raises(DuplicateEdgeError):
            pattern.add_edge("PM", "SE", 1)

    def test_missing_node_edge(self, pattern):
        with pytest.raises(MissingNodeError):
            pattern.add_edge("PM", "nope", 1)

    def test_remove_node_cascades(self, pattern):
        pattern.remove_node("SE")
        assert not pattern.has_edge("PM", "SE")
        assert not pattern.has_edge("SE", "TE")
        assert pattern.number_of_edges == 0

    def test_remove_edge(self, pattern):
        pattern.remove_edge("PM", "SE")
        assert not pattern.has_edge("PM", "SE")
        with pytest.raises(MissingEdgeError):
            pattern.remove_edge("PM", "SE")

    def test_successors_predecessors(self, pattern):
        assert pattern.successors("PM") == {"SE"}
        assert pattern.predecessors("TE") == {"SE"}

    def test_edges_iteration(self, pattern):
        assert ("PM", "SE", 3) in set(pattern.edges())

    def test_copy_and_equality(self, pattern):
        clone = pattern.copy()
        assert clone == pattern
        clone.set_bound("PM", "SE", 1)
        assert clone != pattern

    def test_constructor(self):
        p = PatternGraph({"a": "A", "b": "B"}, [("a", "b", 2)])
        assert p.bound("a", "b") == 2

    def test_unhashable(self, pattern):
        with pytest.raises(TypeError):
            hash(pattern)
