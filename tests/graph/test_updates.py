"""Unit tests for the update model (ΔGP / ΔGD)."""

import pytest

from repro.graph.digraph import DataGraph
from repro.graph.errors import UpdateError
from repro.graph.pattern import PatternGraph
from repro.graph.updates import (
    EdgeInsertion,
    GraphKind,
    UpdateBatch,
    UpdateKind,
    apply_updates,
    delete_data_edge,
    delete_data_node,
    delete_pattern_edge,
    delete_pattern_node,
    insert_data_edge,
    insert_data_node,
    insert_pattern_edge,
    insert_pattern_node,
    invert_update,
)


@pytest.fixture
def data() -> DataGraph:
    return DataGraph({"a": "A", "b": "B", "c": "C"}, [("a", "b"), ("b", "c")])


@pytest.fixture
def pattern() -> PatternGraph:
    return PatternGraph({"A": "A", "B": "B"}, [("A", "B", 2)])


class TestConstructorsAndFlags:
    def test_kinds(self):
        assert insert_data_edge("a", "b").kind is UpdateKind.EDGE_INSERT
        assert delete_data_edge("a", "b").kind is UpdateKind.EDGE_DELETE
        assert insert_data_node("x", "A").kind is UpdateKind.NODE_INSERT
        assert delete_data_node("x", "A").kind is UpdateKind.NODE_DELETE

    def test_graph_kinds(self):
        assert insert_data_edge("a", "b").graph is GraphKind.DATA
        assert insert_pattern_edge("A", "B", 1).graph is GraphKind.PATTERN

    def test_insertion_deletion_flags(self):
        assert insert_data_edge("a", "b").is_insertion
        assert delete_data_edge("a", "b").is_deletion
        assert insert_data_edge("a", "b").is_edge_update
        assert not insert_data_node("x", "A").is_edge_update

    def test_pattern_edge_requires_bound(self):
        with pytest.raises(UpdateError):
            EdgeInsertion(GraphKind.PATTERN, "A", "B")

    def test_data_edge_rejects_bound(self):
        with pytest.raises(UpdateError):
            EdgeInsertion(GraphKind.DATA, "a", "b", 2)

    def test_node_insert_requires_label(self):
        with pytest.raises(UpdateError):
            insert_data_node("x", ())


class TestApplication:
    def test_data_edge_roundtrip(self, data):
        update = insert_data_edge("a", "c")
        update.apply(data)
        assert data.has_edge("a", "c")
        invert_update(update).apply(data)
        assert not data.has_edge("a", "c")

    def test_pattern_edge_roundtrip(self, pattern):
        update = insert_pattern_edge("B", "A", 3)
        update.apply(pattern)
        assert pattern.bound("B", "A") == 3
        invert_update(update).apply(pattern)
        assert not pattern.has_edge("B", "A")

    def test_data_node_with_edges(self, data):
        update = insert_data_node("d", "D", [("d", "a"), ("b", "d")])
        update.apply(data)
        assert data.has_edge("d", "a")
        assert data.has_edge("b", "d")
        invert_update(update).apply(data)
        assert not data.has_node("d")

    def test_pattern_node_with_edges(self, pattern):
        update = insert_pattern_node("C", "C", [("B", "C", 2)])
        update.apply(pattern)
        assert pattern.bound("B", "C") == 2

    def test_node_deletion_inverse_requires_labels(self):
        update = delete_data_node("x")
        with pytest.raises(UpdateError):
            update.inverse()

    def test_pattern_edge_deletion_inverse_requires_bound(self):
        update = delete_pattern_edge("A", "B")
        with pytest.raises(UpdateError):
            update.inverse()

    def test_wrong_target_graph_rejected(self, data, pattern):
        with pytest.raises(UpdateError):
            insert_pattern_edge("A", "B", 1).apply(data)
        with pytest.raises(UpdateError):
            insert_data_edge("a", "b").apply(pattern)

    def test_apply_updates_routes_by_graph(self, data, pattern):
        apply_updates(
            [insert_data_edge("a", "c"), delete_pattern_edge("A", "B", 2)],
            data_graph=data,
            pattern_graph=pattern,
        )
        assert data.has_edge("a", "c")
        assert not pattern.has_edge("A", "B")

    def test_apply_updates_missing_graph(self, data):
        with pytest.raises(UpdateError):
            apply_updates([insert_pattern_edge("A", "B", 1)], data_graph=data)


class TestUpdateBatch:
    def test_filters(self):
        batch = UpdateBatch(
            [
                insert_data_edge("a", "b"),
                delete_data_edge("b", "c"),
                insert_pattern_edge("A", "B", 1),
                delete_pattern_node("B", "B"),
            ]
        )
        assert len(batch) == 4
        assert len(batch.data_updates()) == 2
        assert len(batch.pattern_updates()) == 2
        assert len(batch.insertions()) == 2
        assert len(batch.deletions()) == 2
        assert batch.of_kind(GraphKind.DATA, UpdateKind.EDGE_INSERT) == [batch[0]]

    def test_sequence_protocol(self):
        batch = UpdateBatch([insert_data_edge("a", "b")])
        assert batch[0].source == "a"
        assert list(batch[:1]) == [batch[0]]
        assert batch == UpdateBatch([insert_data_edge("a", "b")])

    def test_append_type_checked(self):
        batch = UpdateBatch()
        with pytest.raises(TypeError):
            batch.append("not an update")

    def test_apply_all(self, data, pattern):
        batch = UpdateBatch([insert_data_edge("c", "a"), insert_pattern_edge("B", "A", 1)])
        batch.apply_all(data, pattern)
        assert data.has_edge("c", "a")
        assert pattern.has_edge("B", "A")

    def test_updates_are_hashable(self):
        assert len({insert_data_edge("a", "b"), insert_data_edge("a", "b")}) == 1


class TestUpdateBatchValidation:
    """A batch rejects internally inconsistent streams at construction."""

    def test_edge_insert_referencing_deleted_node(self):
        with pytest.raises(UpdateError, match="deleted"):
            UpdateBatch([delete_data_node("a", "A"), insert_data_edge("a", "b")])

    def test_edge_delete_referencing_deleted_node(self):
        with pytest.raises(UpdateError, match="deleted"):
            UpdateBatch([delete_data_node("b", "B"), delete_data_edge("a", "b")])

    def test_carried_edge_referencing_deleted_node(self):
        with pytest.raises(UpdateError, match="carries an edge"):
            UpdateBatch(
                [delete_data_node("a", "A"), insert_data_node("n", "A", [("n", "a")])]
            )

    def test_double_node_deletion(self):
        with pytest.raises(UpdateError, match="twice"):
            UpdateBatch([delete_data_node("a", "A"), delete_data_node("a", "A")])

    def test_double_node_insertion(self):
        with pytest.raises(UpdateError, match="twice"):
            UpdateBatch([insert_data_node("n", "A"), insert_data_node("n", "A")])

    def test_resurrection_allowed(self):
        """Delete-then-re-insert of a node is a valid resurrection."""
        batch = UpdateBatch([delete_data_node("a", "A"), insert_data_node("a", "A")])
        assert len(batch) == 2

    def test_resurrected_node_is_alive_again(self):
        batch = UpdateBatch(
            [
                delete_data_node("a", "A"),
                insert_data_node("a", "B", [("a", "b")]),
                insert_data_edge("b", "a"),
            ]
        )
        assert len(batch) == 3
        # ... and can be deleted again afterwards.
        batch.append(delete_data_node("a", "B"))
        assert len(batch) == 4

    def test_edge_update_between_death_and_rebirth_still_rejected(self):
        with pytest.raises(UpdateError, match="deleted"):
            UpdateBatch(
                [
                    delete_data_node("a", "A"),
                    insert_data_edge("a", "b"),
                    insert_data_node("a", "A"),
                ]
            )

    def test_resurrection_payload_may_reference_the_reborn_node(self):
        batch = UpdateBatch(
            [delete_data_node("a", "A"), insert_data_node("a", "A", [("a", "b")])]
        )
        assert len(batch) == 2

    def test_resurrection_payload_referencing_other_dead_node_rejected(self):
        with pytest.raises(UpdateError, match="carries an edge"):
            UpdateBatch(
                [
                    delete_data_node("a", "A"),
                    delete_data_node("b", "B"),
                    insert_data_node("a", "A", [("a", "b")]),
                ]
            )

    def test_validation_applies_to_append(self):
        batch = UpdateBatch([delete_data_node("a", "A")])
        with pytest.raises(UpdateError):
            batch.append(insert_data_edge("a", "b"))
        assert len(batch) == 1  # the failed append leaves the batch intact

    def test_graphs_are_tracked_independently(self):
        # Deleting data node "x" must not block pattern updates on "x".
        batch = UpdateBatch(
            [delete_data_node("x", "A"), insert_pattern_edge("x", "B", 1)]
        )
        assert len(batch) == 2

    def test_insert_then_delete_is_valid(self):
        batch = UpdateBatch(
            [
                insert_data_node("n", "A", [("n", "a")]),
                insert_data_edge("b", "n"),
                delete_data_node("n", "A"),
            ]
        )
        assert len(batch) == 3

    def test_failure_happens_at_construction_not_apply(self, data):
        """The error surfaces before any graph is touched."""
        untouched = data.copy()
        with pytest.raises(UpdateError):
            UpdateBatch([delete_data_node("c", "C"), insert_data_edge("b", "c")])
        assert data == untouched
