"""Round-trip tests for the graph IO helpers."""

import pytest

from repro.graph.digraph import DataGraph
from repro.graph.io import (
    data_graph_from_dict,
    data_graph_to_dict,
    dump_edge_list,
    load_edge_list,
    load_json,
    pattern_graph_from_dict,
    pattern_graph_to_dict,
    save_json,
)
from repro.graph.pattern import PatternGraph


@pytest.fixture
def data() -> DataGraph:
    return DataGraph({"a": "A", "b": "B", "c": "A"}, [("a", "b"), ("b", "c"), ("c", "a")])


@pytest.fixture
def pattern() -> PatternGraph:
    return PatternGraph({"A": "A", "B": "B"}, [("A", "B", 2), ("B", "A", "*")])


def test_edge_list_roundtrip(tmp_path, data):
    edge_path = tmp_path / "edges.txt"
    label_path = tmp_path / "labels.txt"
    dump_edge_list(data, edge_path, label_path)
    loaded = load_edge_list(edge_path, label_path=label_path)
    assert loaded == data


def test_edge_list_with_labeller(tmp_path, data):
    edge_path = tmp_path / "edges.txt"
    dump_edge_list(data, edge_path)
    loaded = load_edge_list(edge_path, labeller=lambda node: "L")
    assert loaded.primary_label("a") == "L"
    assert set(loaded.edges()) == set(data.edges())


def test_edge_list_default_label(tmp_path):
    path = tmp_path / "edges.txt"
    path.write_text("# comment\nx y\ny z\n")
    loaded = load_edge_list(path)
    assert loaded.primary_label("x") == "N"
    assert loaded.number_of_edges == 2


def test_data_graph_dict_roundtrip(data):
    assert data_graph_from_dict(data_graph_to_dict(data)) == data


def test_pattern_graph_dict_roundtrip(pattern):
    assert pattern_graph_from_dict(pattern_graph_to_dict(pattern)) == pattern


def test_dict_kind_validation(data, pattern):
    with pytest.raises(ValueError):
        data_graph_from_dict(pattern_graph_to_dict(pattern))
    with pytest.raises(ValueError):
        pattern_graph_from_dict(data_graph_to_dict(data))


def test_json_roundtrip(tmp_path, data, pattern):
    data_path = tmp_path / "data.json"
    pattern_path = tmp_path / "pattern.json"
    save_json(data, data_path)
    save_json(pattern, pattern_path)
    assert load_json(data_path) == data
    assert load_json(pattern_path) == pattern


def test_save_json_rejects_other_types(tmp_path):
    with pytest.raises(TypeError):
        save_json(42, tmp_path / "x.json")
