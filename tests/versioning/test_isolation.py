"""Snapshot-isolation stress: concurrent readers vs. a settling writer.

Reader threads pin MVCC handles (latest and random retained versions)
while the writer settles delta payloads through the streaming service.
Afterwards every pinned handle is compared bit-for-bit against a
*sequential oracle replay* — a from-scratch graph / SLen / match
recomputation at that exact version — across many seeds.  A reader may
observe an older version than the newest settle (that is the point of
MVCC), but never a torn or mixed one.
"""

from __future__ import annotations

import asyncio
import random
import threading

import pytest

from repro.graph.digraph import DataGraph
from repro.matching.gpnm import gpnm_query
from repro.service import ServiceConfig, StreamingUpdateService
from repro.spl.matrix import SLenMatrix
from repro.versioning import VersionExpiredError
from repro.workloads.update_gen import derive_seed

from tests.conftest import make_random_graph, make_random_pattern

#: Root seed of the whole stress suite.  Every per-case RNG seed below
#: derives from this single logged value via :func:`derive_seed`
#: (BLAKE2s over the label path — NOT the per-process salted ``hash()``),
#: so a failing case index reproduces bit-identically in any process:
#: rerun with ``-k "[<case>]"``.
ROOT_SEED = 20260807
CASES = tuple(range(32))


def case_seed(case: int, role: str) -> int:
    """The suite's seeding contract (pinned by the test below)."""
    return derive_seed(ROOT_SEED, "isolation", case, role)


def test_seed_derivation_contract_is_pinned():
    # Cross-process stability is the whole point of derive_seed: if
    # these pins ever break, logged failure case indices stop being
    # reproducible.  Update ROOT_SEED deliberately, never by accident.
    assert case_seed(0, "graph") == 17200825336101333204
    assert case_seed(7, "pattern") == 5898602926773027712
    roles = ("graph", "pattern", "payloads", "reader0", "reader1", "reader2")
    seeds = {case_seed(case, role) for case in CASES for role in roles}
    assert len(seeds) == len(CASES) * len(roles)  # cases are independent

#: Settle after every payload (deadline 0 cuts the buffer on submit),
#: keep all versions retained for the post-hoc sweep, and store SLen in
#: small dense blocks so copy-on-write sharing is actually exercised.
def stress_config(history: int = 64) -> ServiceConfig:
    """Service config for the isolation scenarios."""
    return ServiceConfig(
        deadline_seconds=0.0,
        max_buffer=4096,
        coalesce_min_batch=10_000,
        slen_backend="dense",
        dense_block_size=8,
        snapshot_history=history,
    )


def random_payloads(
    base: DataGraph, rng: random.Random, count: int, node_churn: bool
) -> tuple[list[dict], list[DataGraph]]:
    """``count`` always-valid delta payloads plus the graph after each.

    Validity is guaranteed by toggling against a shadow replica: an
    edge pair is inserted only when absent and deleted only when
    present, and each pair is touched at most once per payload (the
    service applies deletes before inserts within one payload).
    """
    shadow = base.copy()
    payloads: list[dict] = []
    states: list[DataGraph] = []
    fresh_serial = 0
    for index in range(count):
        inserts: list[dict] = []
        deletes: list[dict] = []
        nodes = sorted(str(node) for node in shadow.nodes())
        if node_churn and index % 3 == 2:
            # A pure node-churn payload: drop one node (incident edges
            # go with it) and add a fresh one — exercises the SLen slot
            # free list under the service.  Kept free of edge toggles so
            # no same-payload delta can reference the deleted node.
            victim = rng.choice(nodes)
            deletes.append({"type": "node", "node": victim})
            shadow.remove_node(victim)
            fresh = f"fresh{fresh_serial}"
            fresh_serial += 1
            anchor = rng.choice(sorted(str(node) for node in shadow.nodes()))
            inserts.append(
                {"type": "node", "node": fresh, "labels": ["A"], "edges": [[fresh, anchor]]}
            )
            shadow.add_node(fresh, "A")
            shadow.add_edge(fresh, anchor)
        else:
            touched: set[tuple[str, str]] = set()
            for _ in range(rng.randint(1, 4)):
                source, target = rng.sample(nodes, 2)
                if (source, target) in touched:
                    continue
                touched.add((source, target))
                spec = {"type": "edge", "source": source, "target": target}
                if shadow.has_edge(source, target):
                    deletes.append(spec)
                    shadow.remove_edge(source, target)
                else:
                    inserts.append(spec)
                    shadow.add_edge(source, target)
        payloads.append({"deletes": deletes, "inserts": inserts})
        states.append(shadow.copy())
    return payloads, states


def oracle_check(handle, pattern, expected: DataGraph) -> None:
    """Assert a pinned handle is bit-identical to the sequential oracle.

    The match oracle is :func:`gpnm_query` with the paper's totality
    rule on — the same semantics every GPNM algorithm implements.
    """
    assert handle.data == expected
    oracle_slen = SLenMatrix.from_graph(expected)
    assert handle.slen == oracle_slen
    oracle_result = gpnm_query(pattern, expected, oracle_slen)
    assert handle.result.as_dict() == oracle_result.as_dict()


@pytest.mark.parametrize("case", CASES)
def test_concurrent_readers_always_see_a_consistent_version(case):
    async def scenario():
        rng = random.Random(case_seed(case, "payloads"))
        base = make_random_graph(
            num_nodes=18 + case % 5,
            num_edges=40 + case % 7,
            seed=case_seed(case, "graph"),
        )
        pattern = make_random_pattern(
            num_nodes=3 + case % 2,
            num_edges=3 + case % 2,
            seed=case_seed(case, "pattern"),
        )
        payloads, states = random_payloads(
            base, rng, count=6, node_churn=case % 2 == 0
        )

        service = StreamingUpdateService(stress_config())
        await service.register_graph("g", pattern, base)

        pinned: list = []
        errors: list[BaseException] = []
        stop = threading.Event()

        def reader(reader_seed: int) -> None:
            reader_rng = random.Random(reader_seed)
            while not stop.is_set():
                try:
                    if reader_rng.random() < 0.5:
                        pinned.append(service.pin("g"))
                    else:
                        version = reader_rng.randrange(len(payloads) + 1)
                        try:
                            pinned.append(service.pin("g", version))
                        except VersionExpiredError:
                            pass  # not settled yet — never a wrong answer
                    stop.wait(0.001)  # yield; pins per settle stay bounded
                except BaseException as exc:  # pragma: no cover - fail loudly
                    errors.append(exc)
                    return

        threads = [
            threading.Thread(target=reader, args=(case_seed(case, f"reader{i}"),))
            for i in range(3)
        ]
        for thread in threads:
            thread.start()
        try:
            try:
                for payload in payloads:
                    receipt = await service.submit("g", payload)
                    assert not receipt.errors, receipt.errors
                    await service.drain()
            finally:
                stop.set()
                for thread in threads:
                    thread.join()
            assert not errors, errors

            # Every version the readers pinned, plus every retained
            # version swept out of order, matches the sequential oracle.
            versions_by_state = {
                0: base, **{v + 1: graph for v, graph in enumerate(states)}
            }
            assert service.snapshot("g").version == len(payloads)
            for version in rng.sample(
                sorted(versions_by_state), len(versions_by_state)
            ):
                with service.pin("g", version) as handle:
                    oracle_check(handle, pattern, versions_by_state[version])
            # Pins on one version share one immutable snapshot object,
            # so verifying each distinct snapshot covers every pin.
            distinct = {id(handle.snapshot): handle for handle in pinned}
            seen_versions = set()
            for handle in distinct.values():
                oracle_check(handle, pattern, versions_by_state[handle.version])
                seen_versions.add(handle.version)
            assert seen_versions, "readers never caught a single version"
            for handle in pinned:
                handle.release()
        finally:
            await service.close()

    asyncio.run(scenario())


def test_pinned_handle_outlives_history_eviction():
    async def scenario():
        base = make_random_graph(num_nodes=16, num_edges=40, seed=99)
        pattern = make_random_pattern(seed=99)
        service = StreamingUpdateService(stress_config(history=3))
        await service.register_graph("g", pattern, base)

        pinned_base = service.pin("g", 0)
        rng = random.Random(99)
        payloads, states = random_payloads(base, rng, count=6, node_churn=False)
        for payload in payloads:
            await service.submit("g", payload)
            await service.drain()

        # Version 0 fell out of the 3-deep window: the store refuses it…
        with pytest.raises(VersionExpiredError):
            service.snapshot("g", as_of=0)
        with pytest.raises(VersionExpiredError):
            service.matches("g", as_of=0)
        # …but the pinned handle still answers from the original state.
        oracle_check(pinned_base, pattern, base)
        pinned_base.release()

        stats = service.stats("g")["snapshot"]
        assert stats["retained_versions"] == [4, 5, 6]
        assert stats["history_limit"] == 3
        oracle_check(service.pin("g", 6), pattern, states[-1])
        await service.close()

    asyncio.run(scenario())


def test_reader_pin_is_wait_free_during_a_slow_settle():
    """A pin taken mid-settle answers from the old version immediately."""

    async def scenario():
        base = make_random_graph(num_nodes=16, num_edges=40, seed=7)
        pattern = make_random_pattern(seed=7)
        service = StreamingUpdateService(stress_config())
        await service.register_graph("g", pattern, base)

        payloads, states = random_payloads(base, random.Random(7), 1, False)
        submit = asyncio.ensure_future(service.submit("g", payloads[0]))
        # Pin while the settle may still be in flight on the executor.
        with service.pin("g") as handle:
            assert handle.version in (0, 1)
            expected = base if handle.version == 0 else states[0]
            oracle_check(handle, pattern, expected)
        await submit
        await service.drain()
        oracle_check(service.pin("g"), pattern, states[0])
        await service.close()

    asyncio.run(scenario())
