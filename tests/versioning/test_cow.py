"""Copy-on-write structural sharing: fork, mutate, refcount, GC.

Property tests for the block-granular CoW machinery underneath MVCC
snapshots: a ``fork()`` must share every block by pointer
(``np.shares_memory``), a write must copy *only* the touched block on
the writing side, and the :class:`~repro.versioning.store.VersionStore`
must free superseded blocks once the last handle drops (asserted
through ``allocated_bytes``).  Also the regression for the slot
free-list aliasing class: slot reuse on the writer can never leak into
a live snapshot.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.spl.matrix import SLenMatrix
from repro.versioning import SnapshotHandle, VersionExpiredError, VersionStore

from tests.conftest import make_random_graph

BLOCK = 8


def dense_matrix(seed: int = 0, num_nodes: int = 40) -> SLenMatrix:
    """A blocked dense SLen over a small random graph (several blocks)."""
    graph = make_random_graph(num_nodes=num_nodes, num_edges=3 * num_nodes, seed=seed)
    return SLenMatrix.from_graph(graph, backend="dense", dense_block_size=BLOCK)


def block_map(matrix: SLenMatrix) -> dict:
    """Key -> ndarray for every materialised block of a dense matrix."""
    return dict(matrix.backend._blocks)


@dataclasses.dataclass
class FakeSnapshot:
    """Minimal snapshot payload for store-level tests."""

    version: int
    slen: SLenMatrix


# ----------------------------------------------------------------------
# fork(): structural sharing
# ----------------------------------------------------------------------
def test_fork_shares_every_block_by_pointer():
    parent = dense_matrix()
    child = parent.fork()
    parent_blocks = block_map(parent)
    child_blocks = block_map(child)
    assert parent_blocks.keys() == child_blocks.keys()
    assert len(parent_blocks) > 1, "need multiple blocks for the test to mean anything"
    for key, block in parent_blocks.items():
        assert np.shares_memory(block, child_blocks[key]), key
    backend = parent.backend
    assert backend.owned_blocks() == 0
    assert backend.shared_blocks() == len(parent_blocks)
    assert child.backend.owned_blocks() == 0


def test_fork_preserves_values_bit_identically():
    parent = dense_matrix(seed=3)
    expected = parent.copy()
    child = parent.fork()
    assert child == expected
    assert parent == expected


@pytest.mark.parametrize("writer_side", ["parent", "child"])
def test_write_copies_only_the_touched_block(writer_side):
    parent = dense_matrix(seed=1)
    child = parent.fork()
    writer, reader = (parent, child) if writer_side == "parent" else (child, parent)
    frozen = reader.copy()

    nodes = sorted(writer.nodes())
    source, target = nodes[0], nodes[-1]
    old = writer.distance(source, target)
    new_value = 1 if old != 1 else 2
    writer.set_distance(source, target, new_value)

    # The reader saw nothing.
    assert reader == frozen
    assert reader.distance(source, target) == frozen.distance(source, target)

    # Exactly the touched block diverged; every other block is still
    # the same array object on both sides.
    writer_blocks = block_map(writer)
    reader_blocks = block_map(reader)
    copied = [
        key
        for key, block in writer_blocks.items()
        if not np.shares_memory(block, reader_blocks[key])
    ]
    assert len(copied) == 1
    assert writer.backend.owned_blocks() == 1


def test_redundant_write_to_shared_block_does_not_copy():
    parent = dense_matrix(seed=2)
    child = parent.fork()
    source, target = sorted(parent.nodes())[:2]
    parent.set_distance(source, target, parent.distance(source, target))
    assert parent.backend.owned_blocks() == 0
    assert child.backend.shared_blocks() == parent.backend.total_blocks()


def test_chained_forks_isolate_every_generation():
    v0 = dense_matrix(seed=4)
    v1 = v0.fork()
    v2 = v1.fork()
    frozen_v0 = v0.copy()
    frozen_v2 = v2.copy()

    nodes = sorted(v1.nodes())
    v1.set_distance(nodes[0], nodes[1], 1)
    v1.set_distance(nodes[2], nodes[3], 2)
    v1.remove_node(nodes[4])

    assert v0 == frozen_v0
    assert v2 == frozen_v2
    assert v1 != frozen_v0


def test_copy_returns_fully_owned_blocks():
    parent = dense_matrix(seed=5)
    parent.fork()  # parent's blocks are now shared
    clone = parent.copy()
    assert clone.backend.owned_blocks() == clone.backend.total_blocks()
    for key, block in block_map(clone).items():
        assert not np.shares_memory(block, parent.backend._blocks[key]), key


# ----------------------------------------------------------------------
# Slot free-list reuse cannot leak into a live snapshot
# ----------------------------------------------------------------------
def test_slot_reuse_after_remove_cannot_leak_into_snapshot():
    """Regression guard for the ``_resync_staged``-era aliasing class.

    Removing a node frees its slot; a later ``add_node`` reuses it.  If
    the writer's scrub or the new node's writes landed in blocks a
    snapshot still shares, the snapshot would see a foreign node's
    distances under the old node's identity.
    """
    writer = dense_matrix(seed=6)
    snapshot = writer.fork()
    frozen = snapshot.copy()
    graph = make_random_graph(num_nodes=40, num_edges=120, seed=6)

    victims = sorted(writer.nodes())[:4]
    for victim in victims:
        writer.remove_node(victim)
        graph.remove_node(victim)
    for i, victim in enumerate(victims):  # slots come back off the free list
        fresh = f"fresh{i}"
        graph.add_node(fresh, "A")
        graph.add_edge(fresh, sorted(graph.nodes())[0])
        writer.add_node(fresh)
    writer.recompute_rows(graph, [f"fresh{i}" for i in range(len(victims))])

    assert snapshot == frozen
    for victim in victims:
        assert victim in snapshot.nodes()
        assert victim not in writer.nodes()


# ----------------------------------------------------------------------
# VersionStore: refcounted GC via allocated_bytes
# ----------------------------------------------------------------------
def publish_chain(store: VersionStore, length: int, seed: int = 7) -> list[SLenMatrix]:
    """Publish ``length`` CoW-forked versions, each touching one block."""
    matrix = dense_matrix(seed=seed)
    published = []
    for version in range(length):
        store.publish(FakeSnapshot(version=version, slen=matrix))
        published.append(matrix)
        nodes = sorted(matrix.nodes())
        successor = matrix.fork()
        successor.set_distance(nodes[version % len(nodes)], nodes[0], 1 + version)
        matrix = successor
    return published


def test_store_eviction_frees_superseded_blocks():
    store = VersionStore(history=2)
    total_blocks = None
    for _ in publish_chain(store, length=6):
        if total_blocks is None:
            total_blocks = store.allocated_bytes()
    # Two retained versions differing in a handful of CoW'd blocks: the
    # footprint is far below six full copies, and bounded by the base
    # grid plus the retained versions' private blocks.
    block_bytes = BLOCK * BLOCK * 4
    assert store.allocated_bytes() <= total_blocks + 2 * 6 * block_bytes
    assert len(store) == 2
    with pytest.raises(VersionExpiredError):
        store.get(0)


def test_allocated_bytes_drops_when_history_evicts_divergent_versions():
    store = VersionStore(history=4)
    publish_chain(store, length=4, seed=8)
    high_water = store.allocated_bytes()
    # Publishing further versions evicts the oldest; once every retained
    # version shares the same base and the evicted ones' private blocks
    # die, the footprint must not keep growing linearly with versions.
    matrix = store.get().snapshot.slen
    for version in range(4, 10):
        successor = matrix.fork()
        nodes = sorted(successor.nodes())
        successor.set_distance(nodes[version % len(nodes)], nodes[1], version)
        store.publish(FakeSnapshot(version=version, slen=successor))
        matrix = successor
    block_bytes = BLOCK * BLOCK * 4
    assert store.allocated_bytes() <= high_water + 4 * 2 * block_bytes


def test_pinned_handle_survives_eviction_and_counts_bytes_until_release():
    store = VersionStore(history=1)
    matrix = dense_matrix(seed=9)
    store.publish(FakeSnapshot(version=0, slen=matrix))
    pinned = store.pin(0)

    successor = matrix.fork()
    nodes = sorted(successor.nodes())
    successor.set_distance(nodes[0], nodes[1], 1)
    store.publish(FakeSnapshot(version=1, slen=successor))

    # Version 0 is out of the store's window but alive through the pin.
    with pytest.raises(VersionExpiredError):
        store.get(0)
    assert pinned.version == 0
    assert pinned.slen.distance(nodes[0], nodes[1]) == matrix.distance(nodes[0], nodes[1])

    assert pinned.release() is True
    with pytest.raises(RuntimeError):
        _ = pinned.snapshot


def test_handle_refcounting_is_exact():
    handle = SnapshotHandle(FakeSnapshot(version=3, slen=dense_matrix(seed=10)))
    assert handle.refcount == 1
    handle.acquire()
    assert handle.refcount == 2
    assert handle.release() is False
    assert handle.release() is True
    with pytest.raises(RuntimeError):
        handle.acquire()
    with pytest.raises(RuntimeError):
        handle.release()


def test_store_rejects_non_monotone_publication():
    store = VersionStore(history=4)
    matrix = dense_matrix(seed=11)
    store.publish(FakeSnapshot(version=5, slen=matrix))
    with pytest.raises(ValueError):
        store.publish(FakeSnapshot(version=4, slen=matrix))
    # Re-publishing the latest version replaces it (settle-failure path).
    replacement = matrix.copy()
    store.publish(FakeSnapshot(version=5, slen=replacement))
    assert store.get(5).slen is replacement
