"""Workload substrate: graph generator, datasets, pattern and update generators."""

import pytest

from repro.graph.updates import GraphKind
from repro.workloads.datasets import DATASETS, dataset_names, load_dataset
from repro.workloads.generators import (
    DEFAULT_LABEL_ORDER,
    SocialGraphSpec,
    generate_social_graph,
)
from repro.workloads.pattern_gen import PatternSpec, generate_pattern, pattern_for_dataset
from repro.workloads.update_gen import UpdateWorkloadSpec, generate_update_batch


class TestSocialGraphGenerator:
    def test_deterministic(self):
        spec = SocialGraphSpec(name="t", num_nodes=40, num_edges=150, seed=5)
        assert generate_social_graph(spec) == generate_social_graph(spec)

    def test_sizes(self):
        graph = generate_social_graph(SocialGraphSpec(name="t", num_nodes=40, num_edges=150, seed=5))
        assert graph.number_of_nodes == 40
        assert 100 <= graph.number_of_edges <= 150

    def test_labels_come_from_tiers(self):
        spec = SocialGraphSpec(name="t", num_nodes=30, num_edges=90, seed=1)
        graph = generate_social_graph(spec)
        assert graph.labels() <= set(spec.labels)
        assert set(spec.labels) == set(DEFAULT_LABEL_ORDER)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 1, "num_edges": 5},
            {"num_nodes": 5, "num_edges": 0},
            {"num_nodes": 5, "num_edges": 5, "intra_fraction": 0.9, "forward_fraction": 0.9},
        ],
    )
    def test_invalid_specs(self, kwargs):
        with pytest.raises(ValueError):
            SocialGraphSpec(name="t", seed=1, **kwargs)


class TestDatasets:
    def test_registry_has_five_paper_datasets(self):
        assert dataset_names() == ["email-EU-core", "DBLP", "Amazon", "Youtube", "LiveJournal"]

    def test_relative_size_ordering_preserved(self):
        # The synthetic stand-ins must keep the paper's relative edge-count
        # ordering (email < Amazon < DBLP < Youtube < LiveJournal).
        by_paper = sorted(dataset_names(), key=lambda name: DATASETS[name].paper_edges)
        by_quick = sorted(dataset_names(), key=lambda name: DATASETS[name].quick.num_edges)
        assert by_paper == by_quick

    def test_scale_factor_positive(self):
        for spec in DATASETS.values():
            assert spec.scale_factor("quick") > 1
            assert spec.scale_factor("full") > 1

    def test_load_dataset(self):
        graph = load_dataset("email-EU-core")
        assert graph.number_of_nodes == DATASETS["email-EU-core"].quick.num_nodes

    def test_unknown_dataset_and_scale(self):
        with pytest.raises(KeyError):
            load_dataset("nope")
        with pytest.raises(ValueError):
            DATASETS["DBLP"].spec_for("huge")


class TestPatternGenerator:
    def test_deterministic_and_connected_size(self):
        spec = PatternSpec(num_nodes=8, num_edges=10, labels=DEFAULT_LABEL_ORDER, seed=3)
        pattern = generate_pattern(spec)
        assert pattern == generate_pattern(spec)
        assert pattern.number_of_nodes == 8
        assert pattern.number_of_edges >= 7

    def test_bounds_within_range(self):
        spec = PatternSpec(
            num_nodes=6, num_edges=8, labels=DEFAULT_LABEL_ORDER, min_bound=2, max_bound=3,
            star_probability=0.0, seed=4,
        )
        pattern = generate_pattern(spec)
        assert all(2 <= bound <= 3 for _s, _t, bound in pattern.edges())

    def test_respect_label_order(self):
        spec = PatternSpec(
            num_nodes=6, num_edges=8, labels=DEFAULT_LABEL_ORDER, respect_label_order=True, seed=4,
        )
        pattern = generate_pattern(spec)
        rank = {label: position for position, label in enumerate(DEFAULT_LABEL_ORDER)}
        for source, target, _bound in pattern.edges():
            assert rank[pattern.label_of(source)] <= rank[pattern.label_of(target)]

    def test_pattern_for_dataset_helper(self):
        pattern = pattern_for_dataset(DEFAULT_LABEL_ORDER, 6, 6, seed=9)
        assert pattern.number_of_nodes == 6

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"num_nodes": 1, "num_edges": 1},
            {"num_nodes": 4, "num_edges": 2},
            {"num_nodes": 4, "num_edges": 4, "labels": ()},
            {"num_nodes": 4, "num_edges": 4, "min_bound": 0},
            {"num_nodes": 4, "num_edges": 4, "star_probability": 2.0},
        ],
    )
    def test_invalid_specs(self, kwargs):
        kwargs.setdefault("labels", DEFAULT_LABEL_ORDER)
        with pytest.raises(ValueError):
            PatternSpec(seed=1, **kwargs)


class TestUpdateGenerator:
    def _workload(self, seed=11, pattern_updates=6, data_updates=20):
        data = generate_social_graph(SocialGraphSpec(name="t", num_nodes=50, num_edges=200, seed=seed))
        pattern = generate_pattern(
            PatternSpec(num_nodes=6, num_edges=6, labels=DEFAULT_LABEL_ORDER, seed=seed)
        )
        batch = generate_update_batch(
            data,
            pattern,
            UpdateWorkloadSpec(
                num_pattern_updates=pattern_updates, num_data_updates=data_updates, seed=seed
            ),
        )
        return data, pattern, batch

    def test_counts_and_split(self):
        _data, _pattern, batch = self._workload()
        assert len(batch.data_updates()) <= 20
        assert len(batch.data_updates()) >= 16
        assert len(batch.pattern_updates()) <= 6
        assert batch.insertions() and batch.deletions()

    def test_batch_is_applicable(self):
        data, pattern, batch = self._workload()
        batch.apply_all(data, pattern)  # must not raise

    def test_data_before_pattern(self):
        _data, _pattern, batch = self._workload()
        kinds = [update.graph for update in batch]
        if GraphKind.PATTERN in kinds:
            first_pattern = kinds.index(GraphKind.PATTERN)
            assert all(kind is GraphKind.PATTERN for kind in kinds[first_pattern:])

    def test_deterministic(self):
        _d1, _p1, batch1 = self._workload(seed=42)
        _d2, _p2, batch2 = self._workload(seed=42)
        assert batch1 == batch2

    def test_zero_updates(self):
        data, pattern, _batch = self._workload()
        empty = generate_update_batch(
            data, pattern, UpdateWorkloadSpec(num_pattern_updates=0, num_data_updates=0, seed=1)
        )
        assert len(empty) == 0

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            UpdateWorkloadSpec(num_pattern_updates=-1, num_data_updates=0)


class TestUpdatePersonas:
    """Skewed persona mixes layered on the update generator."""

    def _generate(self, persona, total=60, seed=7):
        from repro.workloads.update_gen import generate_update_batch as gen

        data = generate_social_graph(
            SocialGraphSpec(name="p", num_nodes=80, num_edges=320, seed=seed)
        )
        pattern = generate_pattern(
            PatternSpec(num_nodes=4, num_edges=4, labels=DEFAULT_LABEL_ORDER, seed=seed)
        )
        spec = UpdateWorkloadSpec(
            num_pattern_updates=0, num_data_updates=total, seed=seed, persona=persona
        )
        return data, pattern, gen(data, pattern, spec)

    @staticmethod
    def _histogram(batch):
        from repro.graph.updates import (
            EdgeDeletion,
            EdgeInsertion,
            NodeDeletion,
            NodeInsertion,
        )

        counts = {NodeInsertion: 0, EdgeInsertion: 0, EdgeDeletion: 0, NodeDeletion: 0}
        for update in batch.data_updates():
            counts[type(update)] += 1
        return (
            counts[NodeInsertion],
            counts[EdgeInsertion],
            counts[EdgeDeletion],
            counts[NodeDeletion],
        )

    @pytest.mark.parametrize(
        "persona,expected",
        [
            ("social-burst", (6, 42, 6, 6)),  # weights 1:7:1:1
            ("crawler", (30, 24, 6, 0)),  # weights 5:4:1:0
            ("churn-heavy", (6, 6, 30, 18)),  # weights 1:1:5:3
        ],
    )
    def test_persona_split_is_exact(self, persona, expected):
        _data, _pattern, batch = self._generate(persona)
        assert self._histogram(batch) == expected

    def test_personas_are_listed(self):
        from repro.workloads.update_gen import UPDATE_PERSONAS

        assert UPDATE_PERSONAS == ("social-burst", "crawler", "churn-heavy")

    def test_persona_batches_apply_cleanly(self):
        from repro.workloads.update_gen import UPDATE_PERSONAS

        for persona in UPDATE_PERSONAS:
            data, pattern, batch = self._generate(persona, seed=13)
            batch.apply_all(data, pattern)  # must not raise

    def test_persona_batches_are_deterministic(self):
        from repro.workloads.update_gen import UPDATE_PERSONAS

        for persona in UPDATE_PERSONAS:
            _d1, _p1, batch1 = self._generate(persona, seed=29)
            _d2, _p2, batch2 = self._generate(persona, seed=29)
            assert batch1 == batch2

    def test_social_burst_targets_hubs(self):
        from repro.graph.updates import EdgeInsertion

        data, _pattern, batch = self._generate("social-burst", total=80, seed=3)
        ranked = sorted(
            data.nodes(),
            key=lambda node: data.out_degree(node) + data.in_degree(node),
            reverse=True,
        )
        hubs = set(ranked[: max(1, len(ranked) // 20)])
        inserts = [u for u in batch.data_updates() if isinstance(u, EdgeInsertion)]
        touching = sum(1 for u in inserts if u.source in hubs or u.target in hubs)
        # 80% of burst inserts anchor on a hub; demand well over uniform.
        assert touching >= len(inserts) // 2

    def test_unknown_persona_rejected(self):
        with pytest.raises(ValueError, match="persona"):
            UpdateWorkloadSpec(num_pattern_updates=0, num_data_updates=5, persona="gamer")

    def test_no_persona_keeps_balanced_mix(self):
        _data, _pattern, batch = self._generate(None)
        node_ins, edge_ins, edge_del, node_del = self._histogram(batch)
        # The default split is roughly even across the four kinds.
        for count in (node_ins, edge_ins, edge_del, node_del):
            assert 6 <= count <= 24
