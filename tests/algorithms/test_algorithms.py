"""The four GPNM algorithms: paper example, oracle equivalence, statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import paper_example
from repro.algorithms import BatchGPNM, EHGPNM, IncGPNM, UAGPNM
from repro.algorithms.ua_gpnm import make_ua_gpnm, make_ua_gpnm_nopar
from repro.graph.updates import UpdateBatch
from repro.matching.gpnm import gpnm_query
from repro.spl.matrix import SLenMatrix
from repro.workloads.generators import SocialGraphSpec, generate_social_graph
from repro.workloads.pattern_gen import PatternSpec, generate_pattern
from repro.workloads.update_gen import UpdateWorkloadSpec, generate_update_batch
from tests.conftest import make_random_graph, make_random_pattern

ALL_METHODS = (UAGPNM, IncGPNM, EHGPNM, BatchGPNM)


class TestPaperExample:
    @pytest.mark.parametrize("algorithm_class", ALL_METHODS)
    def test_iquery_matches_table1(self, figure1_data, figure1_pattern, algorithm_class):
        engine = algorithm_class(figure1_pattern, figure1_data)
        assert engine.initial_result == paper_example.table1_expected()

    @pytest.mark.parametrize("algorithm_class", ALL_METHODS)
    def test_example2_squery_unchanged(self, figure1_data, figure1_pattern, algorithm_class):
        # Example 2's four updates eliminate each other, so SQuery == IQuery.
        engine = algorithm_class(figure1_pattern, figure1_data)
        outcome = engine.subsequent_query(paper_example.example2_updates())
        assert outcome.result == paper_example.table1_expected()

    def test_ua_gpnm_builds_figure3_tree(self, figure1_data, figure1_pattern):
        engine = UAGPNM(figure1_pattern, figure1_data)
        outcome = engine.subsequent_query(paper_example.example2_updates())
        assert outcome.eh_tree is not None
        assert outcome.stats.eliminated_updates == 3
        assert outcome.stats.refinement_passes == 1

    def test_pass_counts_ordering(self, figure1_data, figure1_pattern):
        batch = paper_example.example2_updates()
        ua = UAGPNM(figure1_pattern, figure1_data).subsequent_query(batch)
        eh = EHGPNM(figure1_pattern, figure1_data).subsequent_query(batch)
        inc = IncGPNM(figure1_pattern, figure1_data).subsequent_query(batch)
        assert ua.stats.refinement_passes <= eh.stats.refinement_passes <= inc.stats.refinement_passes
        assert inc.stats.refinement_passes == len(batch)


def _squery_all_methods(data, pattern, batch, horizon=float("inf")):
    slen = SLenMatrix.from_graph(data, horizon=horizon)
    iquery = gpnm_query(pattern, data, slen, enforce_totality=False)
    results = {}
    for algorithm_class in ALL_METHODS:
        engine = algorithm_class(
            pattern, data, precomputed_slen=slen, precomputed_relation=iquery
        )
        results[algorithm_class.__name__] = engine.subsequent_query(batch).result
    return results


class TestOracleEquivalence:
    @pytest.mark.parametrize("seed", range(5))
    def test_synthetic_workloads(self, seed):
        data = generate_social_graph(
            SocialGraphSpec(name="t", num_nodes=60, num_edges=260, seed=seed)
        )
        pattern = generate_pattern(
            PatternSpec(
                num_nodes=5,
                num_edges=5,
                labels=tuple(sorted(data.labels())),
                min_bound=2,
                max_bound=3,
                seed=seed,
            )
        )
        batch = generate_update_batch(
            data, pattern, UpdateWorkloadSpec(num_pattern_updates=4, num_data_updates=12, seed=seed)
        )
        results = _squery_all_methods(data, pattern, batch)
        oracle = results.pop("BatchGPNM")
        for name, result in results.items():
            assert result == oracle, name

    @pytest.mark.parametrize("seed", range(3))
    def test_bounded_horizon_workloads(self, seed):
        data = generate_social_graph(
            SocialGraphSpec(name="t", num_nodes=50, num_edges=220, seed=seed + 7)
        )
        pattern = generate_pattern(
            PatternSpec(
                num_nodes=5,
                num_edges=5,
                labels=tuple(sorted(data.labels())),
                min_bound=2,
                max_bound=3,
                star_probability=0.0,
                seed=seed,
            )
        )
        batch = generate_update_batch(
            data, pattern, UpdateWorkloadSpec(num_pattern_updates=3, num_data_updates=10, seed=seed)
        )
        results = _squery_all_methods(data, pattern, batch, horizon=4)
        oracle = results.pop("BatchGPNM")
        for name, result in results.items():
            assert result == oracle, name

    @pytest.mark.parametrize("seed", range(3))
    def test_chained_subsequent_queries(self, seed):
        data = make_random_graph(num_nodes=25, num_edges=80, seed=seed)
        pattern = make_random_pattern(seed=seed)
        ua = UAGPNM(pattern, data)
        oracle = BatchGPNM(pattern, data)
        for round_number in range(3):
            batch = generate_update_batch(
                ua.data,
                ua.pattern,
                UpdateWorkloadSpec(num_pattern_updates=2, num_data_updates=6, seed=seed * 10 + round_number),
            )
            assert ua.subsequent_query(batch).result == oracle.subsequent_query(batch).result


class TestStatsAndState:
    def test_stats_fields(self, figure1_data, figure1_pattern):
        outcome = UAGPNM(figure1_pattern, figure1_data).subsequent_query(
            paper_example.example2_updates()
        )
        stats = outcome.stats.as_dict()
        assert stats["updates_processed"] == 4
        assert stats["slen_updates"] == 2
        assert stats["elapsed_seconds"] > 0
        assert stats["elimination_relations"] >= 2

    def test_factories(self, figure1_data, figure1_pattern):
        assert make_ua_gpnm(figure1_pattern, figure1_data).uses_partition
        nopar = make_ua_gpnm_nopar(figure1_pattern, figure1_data)
        assert not nopar.uses_partition
        assert nopar.name == "UA-GPNM-NoPar"

    def test_state_advances(self, figure1_data, figure1_pattern):
        engine = IncGPNM(figure1_pattern, figure1_data)
        before_nodes = engine.data.number_of_nodes
        engine.subsequent_query(paper_example.example2_updates())
        assert engine.data.number_of_edges == figure1_data.number_of_edges + 2
        assert engine.pattern.number_of_edges == figure1_pattern.number_of_edges + 2
        assert engine.data.number_of_nodes == before_nodes

    def test_input_graphs_not_mutated(self, figure1_data, figure1_pattern):
        snapshot = figure1_data.copy()
        engine = UAGPNM(figure1_pattern, figure1_data)
        engine.subsequent_query(paper_example.example2_updates())
        assert figure1_data == snapshot

    def test_empty_batch(self, figure1_data, figure1_pattern):
        engine = EHGPNM(figure1_pattern, figure1_data)
        outcome = engine.subsequent_query(UpdateBatch())
        assert outcome.result == engine.initial_result
        assert outcome.stats.updates_processed == 0


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=300))
def test_property_all_methods_agree(seed):
    """Property: every incremental method equals the from-scratch oracle."""
    data = make_random_graph(num_nodes=20, num_edges=60, seed=seed)
    pattern = make_random_pattern(num_nodes=4, num_edges=4, seed=seed)
    batch = generate_update_batch(
        data, pattern, UpdateWorkloadSpec(num_pattern_updates=3, num_data_updates=8, seed=seed)
    )
    results = _squery_all_methods(data, pattern, batch)
    oracle = results.pop("BatchGPNM")
    assert all(result == oracle for result in results.values())
