"""Regression: the once-per-process deprecation warning is thread-safe.

The streaming service constructs algorithms on executor threads; the
check-then-set on the module-level flag used to race, letting two
threads both emit the warning (or, with unfortunate interleaving,
neither be first).  Exactly one warning must escape no matter how many
threads hit it at once.
"""

import threading
import warnings

from repro.algorithms.base import (
    reset_coalesce_deprecation_warning,
    warn_coalesce_updates_deprecated,
)


def test_exactly_one_warning_across_threads():
    reset_coalesce_deprecation_warning()
    threads = 16
    barrier = threading.Barrier(threads)

    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")

        def hit() -> None:
            barrier.wait()
            warn_coalesce_updates_deprecated(stacklevel=1)

        workers = [threading.Thread(target=hit) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1
    reset_coalesce_deprecation_warning()


def test_reset_allows_the_warning_again():
    reset_coalesce_deprecation_warning()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        warn_coalesce_updates_deprecated(stacklevel=1)
        warn_coalesce_updates_deprecated(stacklevel=1)
    assert len(caught) == 1
    reset_coalesce_deprecation_warning()
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        warn_coalesce_updates_deprecated(stacklevel=1)
    assert len(caught) == 1
    reset_coalesce_deprecation_warning()
