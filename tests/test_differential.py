"""Differential testing harness: every incremental method vs. the oracle.

Property-based in the seeded style: every seed deterministically derives
a random data graph, a random pattern graph and a random multi-update
stream (via the workload generators), and the subsequent-query results of
``UA-GPNM``, ``UA-GPNM-NoPar``, ``INC-GPNM`` and ``EH-GPNM`` — each run
with the batch plan forced to per-update and to coalesced, and with the
``SLen`` matrix on both the sparse and the dense storage backend — must
be identical to the ``BatchGPNM`` from-scratch oracle.  (The
planner-strategy equivalence suite in
``tests/batching/test_planner_equivalence.py`` additionally forces the
partitioned strategy and checks delta-level equality.)  The internal ``SLen`` matrices
are cross-checked against a from-scratch rebuild as well (matrices on
different backends compare equal when they hold the same distances), so
a maintenance bug cannot hide behind a forgiving matching instance.

The harness runs 50+ seeds by default (the ISSUE's acceptance floor);
crank :data:`EXTRA_SEEDS` locally for a deeper sweep.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.algorithms.eh_gpnm import EHGPNM
from repro.algorithms.inc_gpnm import IncGPNM
from repro.algorithms.scratch import BatchGPNM
from repro.algorithms.ua_gpnm import UAGPNM
from repro.matching import top_k_matches
from repro.matching.gpnm import gpnm_query
from repro.service import StreamingUpdateService
from repro.spl.backend import dense_available
from repro.spl.matrix import SLenMatrix
from repro.workloads.generators import DEFAULT_LABEL_ORDER, SocialGraphSpec, generate_social_graph
from repro.workloads.pattern_gen import PatternSpec, generate_pattern
from repro.workloads.update_gen import UpdateWorkloadSpec, generate_update_batch

#: The seeds exercised by the harness (≥ 50, per the acceptance criteria).
SEEDS = tuple(range(52))
#: Bump for a deeper local sweep: SEEDS = tuple(range(52 + EXTRA_SEEDS)).
EXTRA_SEEDS = 0
if EXTRA_SEEDS:
    SEEDS = tuple(range(len(SEEDS) + EXTRA_SEEDS))

METHODS = (
    ("UA-GPNM", lambda p, d, **kw: UAGPNM(p, d, use_partition=True, **kw)),
    ("UA-GPNM-NoPar", lambda p, d, **kw: UAGPNM(p, d, use_partition=False, **kw)),
    ("INC-GPNM", lambda p, d, **kw: IncGPNM(p, d, **kw)),
    ("EH-GPNM", lambda p, d, **kw: EHGPNM(p, d, **kw)),
)

#: Both storage backends; the dense one is skipped (never silently — CI
#: guards against that) only when numpy is unavailable.
BACKENDS = ("sparse", "dense")

requires_backend = {
    "sparse": lambda: None,
    "dense": lambda: None
    if dense_available()
    else pytest.skip("numpy unavailable; dense backend cannot run"),
}


def _random_instance(seed: int):
    """Derive one (data, pattern, batch) instance from ``seed``."""
    data = generate_social_graph(
        SocialGraphSpec(
            name=f"diff{seed}",
            num_nodes=30 + (seed % 5) * 6,
            num_edges=70 + (seed % 7) * 12,
            seed=1000 + seed,
        )
    )
    labels = tuple(label for label in DEFAULT_LABEL_ORDER if label in data.labels())
    pattern = generate_pattern(
        PatternSpec(
            num_nodes=4 + seed % 3,
            num_edges=4 + seed % 3,
            labels=labels,
            min_bound=1,
            max_bound=3,
            star_probability=0.1 if seed % 4 == 0 else 0.0,
            respect_label_order=seed % 2 == 0,
            seed=2000 + seed,
        )
    )
    batch = generate_update_batch(
        data,
        pattern,
        UpdateWorkloadSpec(
            num_pattern_updates=2 + seed % 4,
            num_data_updates=8 + (seed % 5) * 4,
            seed=3000 + seed,
        ),
    )
    return data, pattern, batch


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", SEEDS)
def test_methods_match_oracle(seed, backend):
    requires_backend[backend]()
    data, pattern, batch = _random_instance(seed)
    slen = SLenMatrix.from_graph(data, backend=backend)
    iquery = gpnm_query(pattern, data, slen, enforce_totality=False)

    oracle = BatchGPNM(pattern, data, precomputed_slen=slen, precomputed_relation=iquery)
    expected = oracle.subsequent_query(batch).result
    expected_slen = oracle.slen

    for name, factory in METHODS:
        for plan in ("per-update", "coalesced"):
            engine = factory(
                pattern,
                data,
                precomputed_slen=slen,
                precomputed_relation=iquery,
                # Force the strategy even for these small batches; the
                # auto plan would route them per-update below the
                # benchmarked crossover.
                batch_plan=plan,
            )
            outcome = engine.subsequent_query(batch)
            label = f"{name} (backend={backend}, plan={plan}, seed={seed})"
            assert engine.slen_backend == backend, label
            assert outcome.result == expected, f"{label}: SQuery differs from oracle"
            assert engine.slen == expected_slen, f"{label}: SLen differs from rebuild"
            assert outcome.stats.planned_strategy == plan, label
            if plan == "coalesced":
                assert outcome.stats.coalesced_batches <= 1


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", SEEDS[:8])
def test_chained_batches_match_oracle(seed, backend):
    """Chaining several subsequent queries keeps every method exact."""
    requires_backend[backend]()
    data, pattern, _ = _random_instance(seed)
    slen = SLenMatrix.from_graph(data, backend=backend)
    iquery = gpnm_query(pattern, data, slen, enforce_totality=False)

    engines = {
        (name, plan): factory(
            pattern,
            data,
            precomputed_slen=slen,
            precomputed_relation=iquery,
            batch_plan=plan,
        )
        for name, factory in METHODS
        for plan in ("per-update", "coalesced")
    }
    oracle = BatchGPNM(pattern, data, precomputed_slen=slen, precomputed_relation=iquery)

    for step in range(3):
        batch = generate_update_batch(
            oracle.data,
            oracle.pattern,
            UpdateWorkloadSpec(
                num_pattern_updates=1 + step,
                num_data_updates=6 + 4 * step,
                seed=5000 + 17 * seed + step,
            ),
        )
        expected = oracle.subsequent_query(batch).result
        for (name, plan), engine in engines.items():
            got = engine.subsequent_query(batch).result
            assert got == expected, (
                f"{name} (backend={backend}, plan={plan}, seed={seed}, "
                f"step={step}) diverged"
            )


# ----------------------------------------------------------------------
# Time-travel differential: ``as_of`` reads vs. per-version checkpoints
# ----------------------------------------------------------------------
#: Seeds for the MVCC time-travel sweep (each runs a streaming service).
TIME_TRAVEL_SEEDS = tuple(range(10))


def _time_travel_instance(seed: int):
    """One (data, pattern, payloads, per-version graphs) service instance.

    Data-only delta payloads (the service's wire vocabulary carries no
    pattern updates), generated by toggling edges against a shadow
    replica so every delta is valid by construction.
    """
    from tests.versioning.test_isolation import random_payloads

    data, pattern, _ = _random_instance(seed)
    payloads, states = random_payloads(
        data, random.Random(7000 + seed), count=5, node_churn=seed % 2 == 0
    )
    return data, pattern, payloads, states


def _expected_reads(pattern, graph, k: int = 5):
    """The checkpointed oracle for one version: matches, top-k, slen."""
    slen = SLenMatrix.from_graph(graph)
    result = gpnm_query(pattern, graph, slen)
    ranked = top_k_matches(result, pattern, graph, slen, k)
    top_k = {
        p: [(match.data_node, match.score) for match in matches]
        for p, matches in ranked.items()
    }
    return result.as_dict(), top_k, slen


@pytest.mark.parametrize("seed", TIME_TRAVEL_SEEDS)
def test_as_of_reads_match_every_checkpointed_version(seed):
    """Replaying out of order, every ``as_of`` read equals its checkpoint."""
    requires_backend["dense"]()
    from tests.versioning.test_isolation import stress_config

    data, pattern, payloads, states = _time_travel_instance(seed)

    async def scenario():
        service = StreamingUpdateService(stress_config())
        await service.register_graph("g", pattern, data)
        try:
            checkpoints = {0: _expected_reads(pattern, data)}
            for version, (payload, graph) in enumerate(zip(payloads, states), start=1):
                receipt = await service.submit("g", payload)
                assert not receipt.errors, receipt.errors
                await service.drain()
                checkpoints[version] = _expected_reads(pattern, graph)
            assert service.snapshot("g").version == len(payloads)

            versions = list(checkpoints)
            random.Random(seed).shuffle(versions)  # deterministic disorder
            for version in versions:
                matches, top_k, slen = checkpoints[version]
                label = f"seed={seed}, as_of={version}"
                assert service.matches("g", as_of=version) == matches, label
                got_top_k = {
                    p: [(match.data_node, match.score) for match in ranked]
                    for p, ranked in service.top_k("g", 5, as_of=version).items()
                }
                assert got_top_k == top_k, label
                nodes = sorted(str(node) for node in slen.nodes())[:6]
                for source in nodes:
                    for target in nodes:
                        assert service.slen_distance(
                            "g", source, target, as_of=version
                        ) == slen.distance(source, target), label
                # The lifetime stamps answer membership for the same
                # version, even though they never store a snapshot.
                history = service.graph_history("g")
                graph = data if version == 0 else states[version - 1]
                assert history.nodes_as_of(version) == set(graph.nodes()), label
                assert history.edges_as_of(version) == set(graph.edges()), label
        finally:
            await service.close()

    asyncio.run(scenario())


def test_as_of_past_eviction_raises_clean_version_expired():
    """Evicted versions answer with ``VersionExpiredError``, never wrongly."""
    requires_backend["dense"]()
    from repro.versioning import VersionExpiredError
    from tests.versioning.test_isolation import stress_config

    data, pattern, payloads, states = _time_travel_instance(3)

    async def scenario():
        service = StreamingUpdateService(stress_config(history=2))
        await service.register_graph("g", pattern, data)
        try:
            for payload in payloads:
                await service.submit("g", payload)
                await service.drain()
            latest = len(payloads)
            for stale in range(latest - 1):  # only the last 2 are retained
                with pytest.raises(VersionExpiredError) as excinfo:
                    service.matches("g", as_of=stale)
                assert excinfo.value.version == stale
                some_node = sorted(str(node) for node in data.nodes())[0]
                with pytest.raises(VersionExpiredError):
                    service.top_k("g", 3, as_of=stale)
                with pytest.raises(VersionExpiredError):
                    service.slen_distance("g", some_node, some_node, as_of=stale)
            # Unpublished future versions fail the same clean way.
            with pytest.raises(VersionExpiredError):
                service.matches("g", as_of=latest + 1)
            # Retained versions still answer exactly.
            for version in (latest - 1, latest):
                matches, _, _ = _expected_reads(pattern, states[version - 1])
                assert service.matches("g", as_of=version) == matches
        finally:
            await service.close()

    asyncio.run(scenario())
