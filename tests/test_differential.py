"""Differential testing harness: every incremental method vs. the oracle.

Property-based in the seeded style: every seed deterministically derives
a random data graph, a random pattern graph and a random multi-update
stream (via the workload generators), and the subsequent-query results of
``UA-GPNM``, ``UA-GPNM-NoPar``, ``INC-GPNM`` and ``EH-GPNM`` — each run
with the batch plan forced to per-update and to coalesced, and with the
``SLen`` matrix on both the sparse and the dense storage backend — must
be identical to the ``BatchGPNM`` from-scratch oracle.  (The
planner-strategy equivalence suite in
``tests/batching/test_planner_equivalence.py`` additionally forces the
partitioned strategy and checks delta-level equality.)  The internal ``SLen`` matrices
are cross-checked against a from-scratch rebuild as well (matrices on
different backends compare equal when they hold the same distances), so
a maintenance bug cannot hide behind a forgiving matching instance.

The harness runs 50+ seeds by default (the ISSUE's acceptance floor);
crank :data:`EXTRA_SEEDS` locally for a deeper sweep.
"""

from __future__ import annotations

import pytest

from repro.algorithms.eh_gpnm import EHGPNM
from repro.algorithms.inc_gpnm import IncGPNM
from repro.algorithms.scratch import BatchGPNM
from repro.algorithms.ua_gpnm import UAGPNM
from repro.matching.gpnm import gpnm_query
from repro.spl.backend import dense_available
from repro.spl.matrix import SLenMatrix
from repro.workloads.generators import DEFAULT_LABEL_ORDER, SocialGraphSpec, generate_social_graph
from repro.workloads.pattern_gen import PatternSpec, generate_pattern
from repro.workloads.update_gen import UpdateWorkloadSpec, generate_update_batch

#: The seeds exercised by the harness (≥ 50, per the acceptance criteria).
SEEDS = tuple(range(52))
#: Bump for a deeper local sweep: SEEDS = tuple(range(52 + EXTRA_SEEDS)).
EXTRA_SEEDS = 0
if EXTRA_SEEDS:
    SEEDS = tuple(range(len(SEEDS) + EXTRA_SEEDS))

METHODS = (
    ("UA-GPNM", lambda p, d, **kw: UAGPNM(p, d, use_partition=True, **kw)),
    ("UA-GPNM-NoPar", lambda p, d, **kw: UAGPNM(p, d, use_partition=False, **kw)),
    ("INC-GPNM", lambda p, d, **kw: IncGPNM(p, d, **kw)),
    ("EH-GPNM", lambda p, d, **kw: EHGPNM(p, d, **kw)),
)

#: Both storage backends; the dense one is skipped (never silently — CI
#: guards against that) only when numpy is unavailable.
BACKENDS = ("sparse", "dense")

requires_backend = {
    "sparse": lambda: None,
    "dense": lambda: None
    if dense_available()
    else pytest.skip("numpy unavailable; dense backend cannot run"),
}


def _random_instance(seed: int):
    """Derive one (data, pattern, batch) instance from ``seed``."""
    data = generate_social_graph(
        SocialGraphSpec(
            name=f"diff{seed}",
            num_nodes=30 + (seed % 5) * 6,
            num_edges=70 + (seed % 7) * 12,
            seed=1000 + seed,
        )
    )
    labels = tuple(label for label in DEFAULT_LABEL_ORDER if label in data.labels())
    pattern = generate_pattern(
        PatternSpec(
            num_nodes=4 + seed % 3,
            num_edges=4 + seed % 3,
            labels=labels,
            min_bound=1,
            max_bound=3,
            star_probability=0.1 if seed % 4 == 0 else 0.0,
            respect_label_order=seed % 2 == 0,
            seed=2000 + seed,
        )
    )
    batch = generate_update_batch(
        data,
        pattern,
        UpdateWorkloadSpec(
            num_pattern_updates=2 + seed % 4,
            num_data_updates=8 + (seed % 5) * 4,
            seed=3000 + seed,
        ),
    )
    return data, pattern, batch


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", SEEDS)
def test_methods_match_oracle(seed, backend):
    requires_backend[backend]()
    data, pattern, batch = _random_instance(seed)
    slen = SLenMatrix.from_graph(data, backend=backend)
    iquery = gpnm_query(pattern, data, slen, enforce_totality=False)

    oracle = BatchGPNM(pattern, data, precomputed_slen=slen, precomputed_relation=iquery)
    expected = oracle.subsequent_query(batch).result
    expected_slen = oracle.slen

    for name, factory in METHODS:
        for plan in ("per-update", "coalesced"):
            engine = factory(
                pattern,
                data,
                precomputed_slen=slen,
                precomputed_relation=iquery,
                # Force the strategy even for these small batches; the
                # auto plan would route them per-update below the
                # benchmarked crossover.
                batch_plan=plan,
            )
            outcome = engine.subsequent_query(batch)
            label = f"{name} (backend={backend}, plan={plan}, seed={seed})"
            assert engine.slen_backend == backend, label
            assert outcome.result == expected, f"{label}: SQuery differs from oracle"
            assert engine.slen == expected_slen, f"{label}: SLen differs from rebuild"
            assert outcome.stats.planned_strategy == plan, label
            if plan == "coalesced":
                assert outcome.stats.coalesced_batches <= 1


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("seed", SEEDS[:8])
def test_chained_batches_match_oracle(seed, backend):
    """Chaining several subsequent queries keeps every method exact."""
    requires_backend[backend]()
    data, pattern, _ = _random_instance(seed)
    slen = SLenMatrix.from_graph(data, backend=backend)
    iquery = gpnm_query(pattern, data, slen, enforce_totality=False)

    engines = {
        (name, plan): factory(
            pattern,
            data,
            precomputed_slen=slen,
            precomputed_relation=iquery,
            batch_plan=plan,
        )
        for name, factory in METHODS
        for plan in ("per-update", "coalesced")
    }
    oracle = BatchGPNM(pattern, data, precomputed_slen=slen, precomputed_relation=iquery)

    for step in range(3):
        batch = generate_update_batch(
            oracle.data,
            oracle.pattern,
            UpdateWorkloadSpec(
                num_pattern_updates=1 + step,
                num_data_updates=6 + 4 * step,
                seed=5000 + 17 * seed + step,
            ),
        )
        expected = oracle.subsequent_query(batch).result
        for (name, plan), engine in engines.items():
            got = engine.subsequent_query(batch).result
            assert got == expected, (
                f"{name} (backend={backend}, plan={plan}, seed={seed}, "
                f"step={step}) diverged"
            )
