"""Tests for the label-based partition and its bridge nodes (Defs 1-2)."""

import pytest

from repro.graph.errors import MissingNodeError
from repro.partition.label_partition import LabelPartition
from tests.conftest import make_random_graph


class TestFigure4Partition:
    """Examples 11-13 of the paper."""

    def test_partition_labels(self, figure4_data):
        partition = LabelPartition.from_graph(figure4_data)
        assert partition.labels() == {"SE", "TE", "PM"}
        assert partition.number_of_partitions == 3

    def test_membership(self, figure4_data):
        partition = LabelPartition.from_graph(figure4_data)
        assert partition.partition("SE").nodes == {"SE1", "SE2", "SE3", "SE4"}
        assert partition.partition_of("TE2").label == "TE"
        assert partition.label_of("PM1") == "PM"

    def test_inner_bridge_nodes_of_pse(self, figure4_data):
        # Example text: the inner bridge nodes of P_SE are SE1 and SE2.
        partition = LabelPartition.from_graph(figure4_data)
        assert partition.inner_bridge_nodes("SE") == {"SE1", "SE2"}

    def test_outer_bridge_nodes_of_pse(self, figure4_data):
        # Example text: the outer bridge nodes of P_SE are PM1 and TE1.
        partition = LabelPartition.from_graph(figure4_data)
        assert partition.outer_bridge_nodes("SE") == {"PM1", "TE1"}

    def test_pte_has_no_outer_bridge(self, figure4_data):
        partition = LabelPartition.from_graph(figure4_data)
        assert partition.outer_bridge_nodes("TE") == frozenset()

    def test_cross_edges_recorded_in_source_partition(self, figure4_data):
        partition = LabelPartition.from_graph(figure4_data)
        assert ("SE2", "TE1") in partition.partition("SE").cross_edges
        assert ("SE2", "TE1") not in partition.partition("TE").cross_edges

    def test_quotient(self, figure4_data):
        partition = LabelPartition.from_graph(figure4_data)
        assert partition.quotient_successors("SE") == {"PM", "TE"}
        assert partition.reachable_labels("TE") == {"TE"}
        assert partition.reachable_labels("SE") == {"SE", "PM", "TE"}
        assert ("SE", "TE") in partition.quotient_edges()


class TestGeneralProperties:
    @pytest.mark.parametrize("seed", range(4))
    def test_partition_covers_all_nodes_and_edges(self, seed):
        graph = make_random_graph(seed=seed)
        partition = LabelPartition.from_graph(graph)
        covered_nodes = set()
        covered_edges = set()
        for part in partition.partitions():
            assert covered_nodes.isdisjoint(part.nodes)
            covered_nodes |= part.nodes
            covered_edges |= set(part.intra_edges) | set(part.cross_edges)
        assert covered_nodes == set(graph.nodes())
        assert covered_edges == set(graph.edges())

    @pytest.mark.parametrize("seed", range(4))
    def test_bridge_definitions(self, seed):
        graph = make_random_graph(seed=seed)
        partition = LabelPartition.from_graph(graph)
        for part in partition.partitions():
            for inner in part.inner_bridge_nodes:
                assert inner in part.nodes
            for outer in part.outer_bridge_nodes:
                assert outer not in part.nodes

    def test_missing_lookups(self, figure4_data):
        partition = LabelPartition.from_graph(figure4_data)
        with pytest.raises(KeyError):
            partition.partition("nope")
        with pytest.raises(MissingNodeError):
            partition.partition_of("nope")

    def test_partition_size_and_contains(self, figure4_data):
        partition = LabelPartition.from_graph(figure4_data)
        se = partition.partition("SE")
        assert se.size == 4
        assert "SE1" in se
        assert "PM1" not in se
