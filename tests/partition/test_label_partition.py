"""Tests for the label-based partition and its bridge nodes (Defs 1-2)."""

import pytest

from repro.graph.errors import MissingNodeError
from repro.partition.label_partition import LabelPartition
from tests.conftest import make_random_graph


class TestFigure4Partition:
    """Examples 11-13 of the paper."""

    def test_partition_labels(self, figure4_data):
        partition = LabelPartition.from_graph(figure4_data)
        assert partition.labels() == {"SE", "TE", "PM"}
        assert partition.number_of_partitions == 3

    def test_membership(self, figure4_data):
        partition = LabelPartition.from_graph(figure4_data)
        assert partition.partition("SE").nodes == {"SE1", "SE2", "SE3", "SE4"}
        assert partition.partition_of("TE2").label == "TE"
        assert partition.label_of("PM1") == "PM"

    def test_inner_bridge_nodes_of_pse(self, figure4_data):
        # Example text: the inner bridge nodes of P_SE are SE1 and SE2.
        partition = LabelPartition.from_graph(figure4_data)
        assert partition.inner_bridge_nodes("SE") == {"SE1", "SE2"}

    def test_outer_bridge_nodes_of_pse(self, figure4_data):
        # Example text: the outer bridge nodes of P_SE are PM1 and TE1.
        partition = LabelPartition.from_graph(figure4_data)
        assert partition.outer_bridge_nodes("SE") == {"PM1", "TE1"}

    def test_pte_has_no_outer_bridge(self, figure4_data):
        partition = LabelPartition.from_graph(figure4_data)
        assert partition.outer_bridge_nodes("TE") == frozenset()

    def test_cross_edges_recorded_in_source_partition(self, figure4_data):
        partition = LabelPartition.from_graph(figure4_data)
        assert ("SE2", "TE1") in partition.partition("SE").cross_edges
        assert ("SE2", "TE1") not in partition.partition("TE").cross_edges

    def test_quotient(self, figure4_data):
        partition = LabelPartition.from_graph(figure4_data)
        assert partition.quotient_successors("SE") == {"PM", "TE"}
        assert partition.reachable_labels("TE") == {"TE"}
        assert partition.reachable_labels("SE") == {"SE", "PM", "TE"}
        assert ("SE", "TE") in partition.quotient_edges()


class TestGeneralProperties:
    @pytest.mark.parametrize("seed", range(4))
    def test_partition_covers_all_nodes_and_edges(self, seed):
        graph = make_random_graph(seed=seed)
        partition = LabelPartition.from_graph(graph)
        covered_nodes = set()
        covered_edges = set()
        for part in partition.partitions():
            assert covered_nodes.isdisjoint(part.nodes)
            covered_nodes |= part.nodes
            covered_edges |= set(part.intra_edges) | set(part.cross_edges)
        assert covered_nodes == set(graph.nodes())
        assert covered_edges == set(graph.edges())

    @pytest.mark.parametrize("seed", range(4))
    def test_bridge_definitions(self, seed):
        graph = make_random_graph(seed=seed)
        partition = LabelPartition.from_graph(graph)
        for part in partition.partitions():
            for inner in part.inner_bridge_nodes:
                assert inner in part.nodes
            for outer in part.outer_bridge_nodes:
                assert outer not in part.nodes

    def test_missing_lookups(self, figure4_data):
        partition = LabelPartition.from_graph(figure4_data)
        with pytest.raises(KeyError):
            partition.partition("nope")
        with pytest.raises(MissingNodeError):
            partition.partition_of("nope")

    def test_partition_size_and_contains(self, figure4_data):
        partition = LabelPartition.from_graph(figure4_data)
        se = partition.partition("SE")
        assert se.size == 4
        assert "SE1" in se
        assert "PM1" not in se


class TestIncrementalMaintenance:
    """apply_update must equal a from-scratch rebuild of the mutated graph."""

    def _mutations(self, graph, rng):
        """A deterministic mixed mutation script valid for ``graph``."""
        from repro.graph.updates import (
            delete_data_edge,
            delete_data_node,
            insert_data_edge,
            insert_data_node,
        )

        nodes = sorted(graph.nodes(), key=repr)
        edges = sorted(graph.edges(), key=repr)
        script = []
        script.append(delete_data_edge(*edges[0]))
        script.append(delete_data_edge(*edges[len(edges) // 2]))
        victim = nodes[1]
        script.append(delete_data_node(victim, graph.labels_of(victim)))
        source = next(n for n in nodes if n != victim)
        target = next(
            n
            for n in reversed(nodes)
            if n != victim and n != source and not graph.has_edge(source, n)
        )
        script.append(insert_data_edge(source, target))
        script.append(insert_data_node("fresh-node", "Z", edges=((source, "fresh-node"),)))
        return script

    @pytest.mark.parametrize("seed", range(4))
    def test_mixed_script_tracks_rebuild(self, seed):
        import random

        from repro.partition.label_partition import LabelPartition as LP

        graph = make_random_graph(seed=seed)
        partition = LP.from_graph(graph)
        for update in self._mutations(graph, random.Random(seed)):
            update.apply(graph)
            partition.apply_update(update)
            assert partition == LP.from_graph(graph), update

    def test_remove_node_drops_incoming_cross_edges(self, figure4_data):
        partition = LabelPartition.from_graph(figure4_data)
        assert ("SE2", "TE1") in partition.partition("SE").cross_edges
        from repro.graph.updates import delete_data_node

        update = delete_data_node("TE1", figure4_data.labels_of("TE1"))
        update.apply(figure4_data)
        partition.apply_update(update)
        assert ("SE2", "TE1") not in partition.partition("SE").cross_edges
        assert partition == LabelPartition.from_graph(figure4_data)

    def test_last_node_of_label_drops_partition(self):
        from repro.graph.digraph import DataGraph
        from repro.graph.updates import delete_data_node

        graph = DataGraph({"a": "A", "b": "B"}, [("a", "b")])
        partition = LabelPartition.from_graph(graph)
        update = delete_data_node("b", ("B",))
        update.apply(graph)
        partition.apply_update(update)
        assert partition.labels() == {"A"}
        assert partition == LabelPartition.from_graph(graph)

    def test_resurrection_sequence(self):
        """Delete + re-insert with a different label, the compiled
        rebirth shape."""
        from repro.graph.digraph import DataGraph
        from repro.graph.updates import delete_data_node, insert_data_node

        graph = DataGraph({"a": "A", "b": "B"}, [("a", "b"), ("b", "a")])
        partition = LabelPartition.from_graph(graph)
        for update in (
            delete_data_node("b", ("B",)),
            insert_data_node("b", "C", edges=(("a", "b"),)),
        ):
            update.apply(graph)
            partition.apply_update(update)
        assert partition.label_of("b") == "C"
        assert partition == LabelPartition.from_graph(graph)

    def test_pattern_update_rejected(self, figure4_data):
        from repro.graph.errors import UpdateError
        from repro.graph.updates import insert_pattern_edge

        partition = LabelPartition.from_graph(figure4_data)
        with pytest.raises(UpdateError):
            partition.apply_update(insert_pattern_edge("A", "B", 2))

    def test_copy_is_independent(self, figure4_data):
        from repro.graph.updates import delete_data_edge

        partition = LabelPartition.from_graph(figure4_data)
        clone = partition.copy()
        update = delete_data_edge("SE2", "TE1")
        update.apply(figure4_data)
        clone.apply_update(update)
        assert ("SE2", "TE1") in partition.partition("SE").cross_edges
        assert ("SE2", "TE1") not in clone.partition("SE").cross_edges


class TestPartitionCache:
    """UA-GPNM's cross-batch LabelPartition cache (ISSUE 4): reused
    while DataGraph.version matches, rebuilt after any out-of-band
    mutation, always equal to a from-scratch partition."""

    def _engine_and_batches(self, seed=11, rounds=3):
        from repro.algorithms.ua_gpnm import UAGPNM
        from repro.workloads.generators import SocialGraphSpec, generate_social_graph
        from repro.workloads.pattern_gen import PatternSpec, generate_pattern
        from repro.workloads.update_gen import UpdateWorkloadSpec, generate_update_batch

        data = generate_social_graph(
            SocialGraphSpec(name="cache", num_nodes=40, num_edges=130, seed=seed)
        )
        pattern = generate_pattern(
            PatternSpec(num_nodes=4, num_edges=4, labels=("PM", "SE", "TE"), seed=seed)
        )
        engine = UAGPNM(pattern, data, use_partition=True, batch_plan="partitioned")

        def batch(round_number):
            return generate_update_batch(
                engine.data,
                engine.pattern,
                UpdateWorkloadSpec(
                    num_pattern_updates=0,
                    num_data_updates=12,
                    seed=seed * 100 + round_number,
                    mix="delete-heavy",
                ),
            )

        return engine, batch, rounds

    def test_cache_tracks_graph_across_batches(self):
        engine, make_batch, rounds = self._engine_and_batches()
        assert engine._partition_cache is not None  # seeded at construction
        for round_number in range(rounds):
            outcome = engine.subsequent_query(make_batch(round_number))
            assert outcome.stats.planned_strategy == "partitioned"
            assert engine._partition_cache is not None
            assert engine._partition_version == engine._data.version
            assert engine._partition_cache == LabelPartition.from_graph(engine._data)

    def test_cache_invalidated_on_out_of_band_mutation(self):
        engine, make_batch, _rounds = self._engine_and_batches(seed=12)
        engine.subsequent_query(make_batch(0))
        cached_version = engine._partition_version
        # Mutate the engine's graph behind the cache's back.
        victim_edge = next(iter(engine._data.edges()))
        engine._data.remove_edge(*victim_edge)
        assert engine._data.version != cached_version
        # The next partitioned batch must rebuild, not trust the cache.
        engine.subsequent_query(make_batch(1))
        assert engine._partition_version == engine._data.version
        assert engine._partition_cache == LabelPartition.from_graph(engine._data)

    def test_results_identical_with_and_without_cache(self):
        """The cache is a pure optimisation: forcing a rebuild every
        batch (by invalidating) yields bit-identical query results."""
        engine_a, make_batch_a, rounds = self._engine_and_batches(seed=13)
        engine_b, make_batch_b, _ = self._engine_and_batches(seed=13)
        for round_number in range(rounds):
            engine_b._invalidate_partition_cache()
            result_a = engine_a.subsequent_query(make_batch_a(round_number))
            result_b = engine_b.subsequent_query(make_batch_b(round_number))
            assert result_a.result == result_b.result
            assert engine_a.slen == engine_b.slen
