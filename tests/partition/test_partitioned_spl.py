"""Partition-based shortest paths: paper Tables VIII/IX and exactness properties."""

import random

import pytest

from repro import paper_example
from repro.graph.updates import delete_data_edge
from repro.partition.label_partition import LabelPartition
from repro.partition.partitioned_spl import (
    build_slen_partitioned,
    paper_subprocess_1,
    paper_subprocess_2,
    partitioned_recompute_rows,
)
from repro.spl.matrix import INF, SLenMatrix
from repro.spl.sssp import bfs_lengths
from tests.conftest import make_random_graph
from repro.workloads.generators import SocialGraphSpec, generate_social_graph


class TestPaperExamples:
    def test_table_viii(self, figure4_data):
        partition = LabelPartition.from_graph(figure4_data)
        result = paper_subprocess_1(figure4_data, partition, "SE")
        assert result == paper_example.table8_expected()

    def test_table_ix(self, figure4_data):
        partition = LabelPartition.from_graph(figure4_data)
        result = paper_subprocess_2(figure4_data, partition, "SE", "TE")
        assert result == paper_example.table9_expected()

    def test_subprocess2_isolated_partition(self, figure4_data):
        partition = LabelPartition.from_graph(figure4_data)
        result = paper_subprocess_2(figure4_data, partition, "TE", "SE")
        assert all(value == INF for value in result.values())


class TestExactBuilder:
    def test_figure1_graph(self, figure1_data):
        assert build_slen_partitioned(figure1_data) == SLenMatrix.from_graph(figure1_data)

    def test_figure4_graph(self, figure4_data):
        assert build_slen_partitioned(figure4_data) == SLenMatrix.from_graph(figure4_data)

    @pytest.mark.parametrize("seed", range(4))
    def test_random_graphs(self, seed):
        graph = make_random_graph(num_nodes=25, num_edges=80, seed=seed)
        assert build_slen_partitioned(graph) == SLenMatrix.from_graph(graph)

    @pytest.mark.parametrize("seed", range(3))
    def test_tiered_social_graphs(self, seed):
        graph = generate_social_graph(
            SocialGraphSpec(name="t", num_nodes=60, num_edges=240, seed=seed)
        )
        assert build_slen_partitioned(graph) == SLenMatrix.from_graph(graph)


class TestPartitionedRecompute:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_plain_bfs_after_deletion(self, seed):
        graph = generate_social_graph(
            SocialGraphSpec(name="t", num_nodes=50, num_edges=200, seed=seed)
        )
        slen = SLenMatrix.from_graph(graph)
        rng = random.Random(seed)
        source, target = rng.choice(sorted(graph.edges(), key=repr))
        delete_data_edge(source, target).apply(graph)
        # The contract requires the requested sources to cover every node
        # whose row is stale; add a few untouched sources on top.
        stale = [
            node
            for node in sorted(graph.nodes(), key=repr)
            if bfs_lengths(graph, node) != slen.row(node)
        ]
        extras = [node for node in sorted(graph.nodes(), key=repr) if node not in stale][:5]
        sources = stale + extras
        rows = partitioned_recompute_rows(graph, slen, sources)
        assert set(rows) == set(sources)
        for node in sources:
            assert rows[node] == bfs_lengths(graph, node)

    def test_empty_sources(self, figure4_data):
        slen = SLenMatrix.from_graph(figure4_data)
        assert partitioned_recompute_rows(figure4_data, slen, []) == {}
