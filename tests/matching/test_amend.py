"""The incremental amendment pass: growth analysis and exactness."""

import pytest

from repro.graph.updates import (
    UpdateBatch,
    delete_data_edge,
    delete_pattern_edge,
    insert_data_edge,
    insert_pattern_edge,
)
from repro.matching.amend import amend_match, growable_pattern_nodes
from repro.matching.bgs import bounded_simulation
from repro.matching.gpnm import MatchResult, gpnm_query
from repro.spl.incremental import update_slen
from repro.spl.matrix import SLenMatrix
from tests.conftest import make_random_graph, make_random_pattern


class TestGrowablePatternNodes:
    def test_pattern_edge_insertion_does_not_grow(self, figure1_pattern):
        grow = growable_pattern_nodes(figure1_pattern, [insert_pattern_edge("PM", "TE", 2)])
        assert grow == frozenset()

    def test_pattern_edge_deletion_grows_endpoints_and_ancestors(self, figure1_pattern):
        pattern = figure1_pattern.copy()
        deletion = delete_pattern_edge("SE", "TE", 4)
        deletion.apply(pattern)
        grow = growable_pattern_nodes(pattern, [deletion])
        assert "SE" in grow
        assert "PM" in grow  # PM precedes SE in the pattern, so it may grow too.

    def test_data_insertion_grows_everything(self, figure1_pattern):
        grow = growable_pattern_nodes(figure1_pattern, [insert_data_edge("a", "b")])
        assert grow == frozenset(figure1_pattern.nodes())

    def test_data_deletion_grows_nothing(self, figure1_pattern):
        grow = growable_pattern_nodes(figure1_pattern, [delete_data_edge("a", "b")])
        assert grow == frozenset()


def _amended_equals_scratch(data, pattern, updates):
    """Apply updates with amend_match and compare with a from-scratch query."""
    slen = SLenMatrix.from_graph(data)
    previous = gpnm_query(pattern, data, slen, enforce_totality=False)
    working_data = data.copy()
    working_pattern = pattern.copy()
    batch = UpdateBatch(updates)
    for update in batch.data_updates():
        update.apply(working_data)
        update_slen(slen, working_data, update)
    for update in batch.pattern_updates():
        update.apply(working_pattern)
    amended = amend_match(
        previous, working_pattern, working_data, slen, batch, enforce_totality=False
    )
    scratch = MatchResult(
        bounded_simulation(working_pattern, working_data), enforce_totality=False
    )
    assert amended == scratch


class TestExactness:
    def test_paper_example_batch(self, figure1_data, figure1_pattern):
        from repro import paper_example

        _amended_equals_scratch(
            figure1_data, figure1_pattern, list(paper_example.example2_updates())
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_random_restricting_batches(self, seed):
        data = make_random_graph(num_nodes=22, num_edges=70, seed=seed)
        pattern = make_random_pattern(seed=seed)
        edges = sorted(data.edges(), key=repr)
        updates = [delete_data_edge(*edges[seed % len(edges)])]
        for source, target, bound in list(pattern.edges())[:1]:
            updates.append(insert_pattern_edge(target, source, 1) if not pattern.has_edge(target, source) else delete_pattern_edge(source, target, bound))
        _amended_equals_scratch(data, pattern, updates)

    @pytest.mark.parametrize("seed", range(6))
    def test_random_relaxing_batches(self, seed):
        data = make_random_graph(num_nodes=22, num_edges=50, seed=seed + 100)
        pattern = make_random_pattern(seed=seed + 100)
        nodes = sorted(data.nodes(), key=repr)
        updates = []
        for offset in range(3):
            source = nodes[(seed + offset) % len(nodes)]
            target = nodes[(seed + offset * 7 + 1) % len(nodes)]
            if source != target and not data.has_edge(source, target):
                updates.append(insert_data_edge(source, target))
        first_edge = next(iter(pattern.edges()))
        updates.append(delete_pattern_edge(first_edge[0], first_edge[1], first_edge[2]))
        _amended_equals_scratch(data, pattern, updates)
