"""Bounded graph simulation and GPNM queries: Table I plus invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import paper_example
from repro.graph.pattern import STAR, PatternGraph
from repro.matching.bgs import bounded_simulation, label_candidates, simulation_fixpoint
from repro.matching.gpnm import MatchResult, gpnm_query
from repro.spl.matrix import SLenMatrix
from tests.conftest import make_random_graph, make_random_pattern


class TestTableI:
    def test_node_matching_result(self, figure1_data, figure1_pattern):
        result = gpnm_query(figure1_pattern, figure1_data)
        assert result.as_dict() == paper_example.table1_expected()

    def test_result_is_total(self, figure1_data, figure1_pattern):
        assert gpnm_query(figure1_pattern, figure1_data).is_total


class TestBGSSemantics:
    def test_label_candidates(self, figure1_data, figure1_pattern):
        candidates = label_candidates(figure1_pattern, figure1_data)
        assert candidates["PM"] == {"PM1", "PM2"}
        assert candidates["S"] == {"S1"}

    def test_bound_violation_prunes(self, figure1_data):
        pattern = PatternGraph({"PM": "PM", "TE": "TE"}, [("PM", "TE", 2)])
        relation = bounded_simulation(pattern, figure1_data)
        # Only PM1 reaches a TE within 2 hops (TE1); PM2 needs 3.
        assert relation["PM"] == {"PM1"}
        assert relation["TE"] == {"TE1", "TE2"}

    def test_star_bound_means_reachability(self, figure1_data):
        pattern = PatternGraph({"PM": "PM", "TE": "TE"}, [("PM", "TE", "*")])
        relation = bounded_simulation(pattern, figure1_data)
        assert relation["PM"] == {"PM1", "PM2"}

    def test_unsatisfiable_pattern_gives_empty_total_result(self, figure1_data):
        pattern = PatternGraph({"TE": "TE", "PM": "PM"}, [("TE", "PM", 1)])
        result = gpnm_query(pattern, figure1_data)
        assert result.is_empty
        assert not result.is_total

    def test_missing_label_empties_result(self, figure1_data):
        pattern = PatternGraph({"X": "CEO"}, [])
        assert gpnm_query(pattern, figure1_data).matches("X") == frozenset()

    def test_fixpoint_from_overapproximation(self, figure1_data, figure1_pattern, figure1_slen):
        exact = bounded_simulation(figure1_pattern, figure1_data, figure1_slen)
        inflated = {
            u: set(figure1_data.nodes_with_label(figure1_pattern.label_of(u)))
            for u in figure1_pattern.nodes()
        }
        assert simulation_fixpoint(figure1_pattern, figure1_slen, inflated) == exact


class TestMatchResult:
    def test_mapping_protocol(self, figure1_data, figure1_pattern):
        result = gpnm_query(figure1_pattern, figure1_data)
        assert set(result) == {"PM", "SE", "TE", "S"}
        assert len(result) == 4
        assert result["S"] == frozenset({"S1"})

    def test_diff(self):
        first = MatchResult({"A": frozenset({"x"}), "B": frozenset({"y"})})
        second = MatchResult({"A": frozenset({"x", "z"}), "B": frozenset()}, enforce_totality=False)
        diff = first.diff(second)
        assert diff["A"] == (frozenset({"z"}), frozenset())
        assert diff["B"] == (frozenset(), frozenset({"y"}))

    def test_totality_collapse(self):
        collapsed = MatchResult({"A": frozenset({"x"}), "B": frozenset()})
        assert collapsed["A"] == frozenset()
        non_collapsed = MatchResult({"A": frozenset({"x"}), "B": frozenset()}, enforce_totality=False)
        assert non_collapsed["A"] == frozenset({"x"})

    def test_matched_data_nodes(self, figure1_data, figure1_pattern):
        result = gpnm_query(figure1_pattern, figure1_data)
        assert result.matched_data_nodes() == {
            "PM1", "PM2", "SE1", "SE2", "S1", "TE1", "TE2",
        }

    def test_equality_with_mapping(self, figure1_data, figure1_pattern):
        result = gpnm_query(figure1_pattern, figure1_data)
        assert result == paper_example.table1_expected()

    def test_unhashable(self):
        with pytest.raises(TypeError):
            hash(MatchResult({}))


@settings(max_examples=20, deadline=None)
@given(
    graph_seed=st.integers(min_value=0, max_value=500),
    pattern_seed=st.integers(min_value=0, max_value=500),
)
def test_simulation_invariants(graph_seed, pattern_seed):
    """Property: labels match, every edge constraint holds, and the relation is maximal."""
    data = make_random_graph(num_nodes=20, num_edges=60, seed=graph_seed)
    pattern = make_random_pattern(seed=pattern_seed)
    slen = SLenMatrix.from_graph(data)
    relation = bounded_simulation(pattern, data, slen)
    for u, matches in relation.items():
        for v in matches:
            assert pattern.label_of(u) in data.labels_of(v)
    for u, u_prime, bound in pattern.edges():
        limit = float("inf") if bound is STAR else bound
        for v in relation[u]:
            assert any(
                slen.distance(v, v_prime) <= limit for v_prime in relation[u_prime]
            ), (u, u_prime, v)
    # Maximality: adding any label-consistent node back violates some constraint
    # after refinement (the fixpoint from the inflated start equals the relation).
    inflated = {u: set(data.nodes_with_label(pattern.label_of(u))) for u in pattern.nodes()}
    assert simulation_fixpoint(pattern, slen, inflated) == relation
