"""Tests for the top-k matching-node extension (paper future work)."""

import pytest

from repro.matching.gpnm import gpnm_query
from repro.matching.topk import RankedMatch, score_match, top_k_matches
from repro.spl.matrix import SLenMatrix
from tests.conftest import make_random_graph, make_random_pattern


@pytest.fixture
def state(figure1_data, figure1_pattern, figure1_slen):
    result = gpnm_query(figure1_pattern, figure1_data, figure1_slen)
    return figure1_data, figure1_pattern, figure1_slen, result


class TestScoring:
    def test_scores_in_unit_interval(self, state):
        data, pattern, slen, result = state
        for u in result:
            for v in result.matches(u):
                assert 0.0 <= score_match(u, v, pattern, data, slen, result) <= 1.0

    def test_tighter_match_scores_higher(self, state):
        data, pattern, slen, result = state
        # PM1 reaches SE2 at distance 1 and S1 at 3; PM2 reaches SE1 at 1 and S1 at 2,
        # but PM1 has higher degree; both should be valid, distinct scores.
        pm1 = score_match("PM", "PM1", pattern, data, slen, result)
        pm2 = score_match("PM", "PM2", pattern, data, slen, result)
        assert pm1 != pm2

    def test_deterministic(self, state):
        data, pattern, slen, result = state
        first = top_k_matches(result, pattern, data, slen, k=2)
        second = top_k_matches(result, pattern, data, slen, k=2)
        assert first == second


class TestTopK:
    def test_k_limits_result_size(self, state):
        data, pattern, slen, result = state
        ranked = top_k_matches(result, pattern, data, slen, k=1)
        assert all(len(matches) <= 1 for matches in ranked.values())
        assert set(ranked) == set(result)

    def test_all_matches_returned_when_k_large(self, state):
        data, pattern, slen, result = state
        ranked = top_k_matches(result, pattern, data, slen, k=10)
        for u, matches in ranked.items():
            assert {match.data_node for match in matches} == set(result.matches(u))

    def test_sorted_by_descending_score(self, state):
        data, pattern, slen, result = state
        ranked = top_k_matches(result, pattern, data, slen, k=5)
        for matches in ranked.values():
            scores = [match.score for match in matches]
            assert scores == sorted(scores, reverse=True)

    def test_single_pattern_node(self, state):
        data, pattern, slen, result = state
        ranked = top_k_matches(result, pattern, data, slen, k=2, pattern_node="SE")
        assert list(ranked) == ["SE"]
        assert all(isinstance(match, RankedMatch) for match in ranked["SE"])

    def test_invalid_k(self, state):
        data, pattern, slen, result = state
        with pytest.raises(ValueError):
            top_k_matches(result, pattern, data, slen, k=0)

    @pytest.mark.parametrize("seed", range(3))
    def test_random_graphs(self, seed):
        data = make_random_graph(seed=seed)
        pattern = make_random_pattern(seed=seed)
        slen = SLenMatrix.from_graph(data)
        result = gpnm_query(pattern, data, slen, enforce_totality=False)
        ranked = top_k_matches(result, pattern, data, slen, k=3)
        for u, matches in ranked.items():
            assert len(matches) <= 3
            for match in matches:
                assert match.data_node in result.matches(u)
                assert 0.0 <= match.score <= 1.0
