"""Candidate sets (Example 7 / Table IV) and affected sets (Example 8 / Table VII)."""

import pytest

from repro import paper_example
from repro.graph.errors import UpdateError
from repro.graph.updates import (
    delete_pattern_edge,
    delete_pattern_node,
    insert_data_edge,
    insert_pattern_edge,
    insert_pattern_node,
)
from repro.matching.affected import affected_set_from_delta
from repro.matching.candidates import candidate_set
from repro.matching.gpnm import gpnm_query
from repro.spl.incremental import update_slen


@pytest.fixture
def iquery(figure1_data, figure1_pattern, figure1_slen):
    return gpnm_query(figure1_pattern, figure1_data, figure1_slen, enforce_totality=False)


class TestExample7:
    def test_can_rn_up1(self, figure1_data, figure1_pattern, figure1_slen, iquery):
        up1 = insert_pattern_edge("PM", "TE", 2)
        candidates = candidate_set(up1, figure1_pattern, figure1_data, figure1_slen, iquery)
        assert candidates.remove_nodes == {"PM2", "TE2"}
        assert candidates.add_nodes == frozenset()
        assert candidates.bound == 2

    def test_can_rn_up2(self, figure1_data, figure1_pattern, figure1_slen, iquery):
        up2 = insert_pattern_edge("S", "TE", 4)
        candidates = candidate_set(up2, figure1_pattern, figure1_data, figure1_slen, iquery)
        assert candidates.remove_nodes == {"TE2"}

    def test_up1_covers_up2(self, figure1_data, figure1_pattern, figure1_slen, iquery):
        up1 = candidate_set(
            insert_pattern_edge("PM", "TE", 2), figure1_pattern, figure1_data, figure1_slen, iquery
        )
        up2 = candidate_set(
            insert_pattern_edge("S", "TE", 4), figure1_pattern, figure1_data, figure1_slen, iquery
        )
        assert up1.covers(up2)
        assert not up2.covers(up1)
        assert len(up1) == 2


class TestOtherPatternUpdates:
    def test_edge_deletion_candidates(self, figure1_data, figure1_pattern, figure1_slen, iquery):
        deletion = delete_pattern_edge("PM", "S", 3)
        candidates = candidate_set(deletion, figure1_pattern, figure1_data, figure1_slen, iquery)
        # All PM and S nodes are already matched and satisfy the bound, so
        # nothing new can be added by removing the constraint.
        assert candidates.add_nodes == frozenset()

    def test_node_insertion_candidates(self, figure1_data, figure1_pattern, figure1_slen, iquery):
        insertion = insert_pattern_node("DB", "DB", [("PM", "DB", 2)])
        candidates = candidate_set(insertion, figure1_pattern, figure1_data, figure1_slen, iquery)
        assert candidates.add_nodes == {"DB1"}
        assert candidates.remove_nodes == {"PM1", "PM2"}

    def test_node_deletion_candidates(self, figure1_data, figure1_pattern, figure1_slen, iquery):
        deletion = delete_pattern_node("TE", "TE")
        candidates = candidate_set(deletion, figure1_pattern, figure1_data, figure1_slen, iquery)
        # SE nodes are all matched already, so nothing becomes addable.
        assert candidates.add_nodes == frozenset()

    def test_data_update_rejected(self, figure1_data, figure1_pattern, figure1_slen, iquery):
        with pytest.raises(UpdateError):
            candidate_set(
                insert_data_edge("SE1", "TE2"),
                figure1_pattern,
                figure1_data,
                figure1_slen,
                iquery,
            )

    def test_missing_pattern_node_rejected(self, figure1_data, figure1_pattern, figure1_slen, iquery):
        with pytest.raises(UpdateError):
            candidate_set(
                delete_pattern_node("nope", "X"),
                figure1_pattern,
                figure1_data,
                figure1_slen,
                iquery,
            )


class TestExample8AffectedSets:
    def test_affected_sets_and_coverage(self, figure1_data, figure1_slen):
        ud1 = insert_data_edge("SE1", "TE2")
        ud2 = insert_data_edge("DB1", "S1")
        ud1.apply(figure1_data)
        aff1 = affected_set_from_delta(ud1, update_slen(figure1_slen, figure1_data, ud1))
        ud2.apply(figure1_data)
        aff2 = affected_set_from_delta(ud2, update_slen(figure1_slen, figure1_data, ud2))
        # Table VII: UD1 affects every node, UD2 affects five of them.
        assert aff1.nodes == set(paper_example.FIGURE1_LABELS)
        assert aff2.nodes == {"PM1", "SE2", "S1", "TE1", "DB1"}
        assert aff1.covers(aff2)
        assert not aff2.covers(aff1)
        assert not aff1.is_empty
        assert len(aff2) == 5
