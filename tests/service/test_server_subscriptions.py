"""TCP wire protocol for subscriptions: subscribe, notify push, unsubscribe."""

import asyncio
import json

from repro.graph import DataGraph, PatternGraph
from repro.service import ServiceConfig, ServiceServer, StreamingUpdateService

QUIET = dict(deadline_seconds=30.0, max_buffer=10_000, coalesce_min_batch=10_000)


def make_data() -> DataGraph:
    data = DataGraph()
    for i in range(6):
        data.add_node(f"n{i}", "A" if i % 2 == 0 else "B")
    for i in range(6):
        data.add_edge(f"n{i}", f"n{(i + 1) % 6}")
    data.add_node("x0", "X")
    data.add_node("x1", "X")
    return data


def pattern_doc(label_a: str = "A", label_b: str = "B", bound: int = 2) -> dict:
    return {
        "kind": "pattern_graph",
        "nodes": [{"id": "p0", "label": label_a}, {"id": "p1", "label": label_b}],
        "edges": [["p0", "p1", bound]],
    }


class Client:
    """One JSON-lines connection."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    async def call(self, request: dict) -> dict:
        self.writer.write(json.dumps(request).encode() + b"\n")
        await self.writer.drain()
        return await self.read_line()

    async def read_line(self) -> dict:
        line = await asyncio.wait_for(self.reader.readline(), timeout=10)
        return json.loads(line)

    async def close(self):
        self.writer.close()
        await self.writer.wait_closed()


async def start_stack():
    service = StreamingUpdateService(ServiceConfig(**QUIET))
    await service.register("g", make_data())
    server = ServiceServer(service, port=0)
    host, port = await server.start()
    reader, writer = await asyncio.open_connection(host, port)
    return service, server, Client(reader, writer)


def test_subscribe_update_notify_round_trip():
    async def scenario():
        service, server, client = await start_stack()

        subscribed = await client.call(
            {
                "op": "subscribe",
                "graph": "g",
                "pattern_id": "ab",
                "pattern": pattern_doc(),
                "k": 2,
            }
        )
        assert subscribed["ok"] is True
        assert subscribed["graph"] == "g" and subscribed["pattern_id"] == "ab"
        assert subscribed["version"] == service.snapshot("g").version

        update = await client.call(
            {
                "op": "update",
                "graph": "g",
                "inserts": [{"type": "edge", "source": "n0", "target": "n3"}],
            }
        )
        assert update["ok"] and update["accepted"] == 1
        await service.drain()

        notify = await client.read_line()
        assert notify["kind"] == "notify"
        assert notify["graph"] == "g" and notify["pattern_id"] == "ab"
        assert notify["version"] == service.snapshot("g").version
        assert set(notify) >= {"added", "removed"}
        # The notify payload matches what the snapshot now serves.
        published = service.matches("g", pattern_id="ab")
        for pattern_node, nodes in notify["added"].items():
            assert set(nodes) <= {str(n) for n in published[pattern_node]}

        # Pattern-addressed reads agree with the library API.
        matches = await client.call(
            {"op": "matches", "graph": "g", "pattern_id": "ab"}
        )
        assert matches["ok"]
        assert matches["matches"] == {
            str(p): sorted(str(n) for n in nodes) for p, nodes in published.items()
        }
        ranked = await client.call(
            {"op": "top-k", "graph": "g", "k": 2, "pattern_id": "ab"}
        )
        assert ranked["ok"] and set(ranked["top_k"]) == {"p0", "p1"}

        await client.close()
        await server.close()
        await service.close()

    asyncio.run(scenario())


def test_unsubscribe_detaches_and_optionally_drops():
    async def scenario():
        service, server, client = await start_stack()
        await client.call(
            {"op": "subscribe", "graph": "g", "pattern_id": "ab", "pattern": pattern_doc()}
        )

        # Plain unsubscribe detaches this connection's listener but the
        # subscription itself keeps serving reads.
        detached = await client.call(
            {"op": "unsubscribe", "graph": "g", "pattern_id": "ab"}
        )
        assert detached["ok"] and detached["detached"] is True
        assert detached["dropped"] is False
        assert "ab" in service.snapshot("g").subscriptions

        # No notify reaches a detached connection: the next line the
        # client reads is its own ping reply, not a notify.
        await client.call(
            {
                "op": "update",
                "graph": "g",
                "inserts": [{"type": "edge", "source": "n1", "target": "n4"}],
            }
        )
        await service.drain()
        await asyncio.sleep(0.05)
        assert await client.call({"op": "ping"}) == {"ok": True, "pong": True}

        # drop=true removes the standing pattern from the service.
        dropped = await client.call(
            {"op": "unsubscribe", "graph": "g", "pattern_id": "ab", "drop": True}
        )
        assert dropped["ok"] and dropped["dropped"] is True
        assert "ab" not in service.snapshot("g").subscriptions

        await client.close()
        await server.close()
        await service.close()

    asyncio.run(scenario())


def test_every_subscribed_connection_gets_the_push():
    async def scenario():
        service, server, client_a = await start_stack()
        reader, writer = await asyncio.open_connection(server.host, server.port)
        client_b = Client(reader, writer)

        # k makes the subscription track a ranking, so the distance shift
        # from the inserted edge guarantees a non-empty push delta.
        await client_a.call(
            {
                "op": "subscribe",
                "graph": "g",
                "pattern_id": "ab",
                "pattern": pattern_doc(),
                "k": 2,
            }
        )
        # Second client subscribes to the already-standing pattern by id
        # alone — no pattern doc needed.
        joined = await client_b.call(
            {"op": "subscribe", "graph": "g", "pattern_id": "ab"}
        )
        assert joined["ok"] is True

        await client_a.call(
            {
                "op": "update",
                "graph": "g",
                "inserts": [{"type": "edge", "source": "n0", "target": "n3"}],
            }
        )
        await service.drain()
        for client in (client_a, client_b):
            notify = await client.read_line()
            assert notify["kind"] == "notify" and notify["pattern_id"] == "ab"

        await client_a.close()
        await client_b.close()
        await server.close()
        await service.close()

    asyncio.run(scenario())


def test_untouched_pattern_gets_no_notify():
    async def scenario():
        service, server, client = await start_stack()
        await client.call(
            {"op": "subscribe", "graph": "g", "pattern_id": "ab", "pattern": pattern_doc()}
        )
        # The X-island edge cannot touch the A/B pattern: no notify.
        await client.call(
            {
                "op": "update",
                "graph": "g",
                "inserts": [{"type": "edge", "source": "x0", "target": "x1"}],
            }
        )
        await service.drain()
        await asyncio.sleep(0.05)
        assert await client.call({"op": "ping"}) == {"ok": True, "pong": True}
        await client.close()
        await server.close()
        await service.close()

    asyncio.run(scenario())


def test_subscription_wire_error_paths():
    async def scenario():
        service, server, client = await start_stack()

        missing_id = await client.call({"op": "subscribe", "graph": "g"})
        assert missing_id["ok"] is False and "pattern_id" in missing_id["error"]

        unknown = await client.call(
            {"op": "subscribe", "graph": "g", "pattern_id": "ghost"}
        )
        assert unknown["ok"] is False  # no doc, no standing pattern to join

        bad_k = await client.call(
            {
                "op": "subscribe",
                "graph": "g",
                "pattern_id": "ab",
                "pattern": pattern_doc(),
                "k": 0,
            }
        )
        assert bad_k["ok"] is False and "'k'" in bad_k["error"]

        bad_read = await client.call(
            {"op": "matches", "graph": "g", "pattern_id": "ghost"}
        )
        assert bad_read["ok"] is False and "no subscription" in bad_read["error"]

        empty_id = await client.call(
            {"op": "subscribe", "graph": "g", "pattern_id": ""}
        )
        assert empty_id["ok"] is False

        # The connection survived every error.
        assert await client.call({"op": "ping"}) == {"ok": True, "pong": True}
        await client.close()
        await server.close()
        await service.close()

    asyncio.run(scenario())


def test_closed_connection_listeners_are_cleaned_up():
    async def scenario():
        service, server, client = await start_stack()
        await client.call(
            {"op": "subscribe", "graph": "g", "pattern_id": "ab", "pattern": pattern_doc()}
        )
        assert service.stats("g")["subscriptions"]["ab"]["listeners"] == 1
        await client.close()
        await asyncio.sleep(0.05)
        # The server detached the dead connection's listener; a settle
        # that follows pushes to nobody and does not error.
        assert service.stats("g")["subscriptions"]["ab"]["listeners"] == 0
        await service.submit(
            "g", {"inserts": [{"type": "edge", "source": "n0", "target": "n3"}]}
        )
        await service.drain()
        assert service.errors == []
        await server.close()
        await service.close()

    asyncio.run(scenario())
