"""JSON-lines TCP server round trips against a live service."""

import asyncio
import json

from repro.graph import DataGraph, PatternGraph
from repro.service import ServiceConfig, ServiceServer, StreamingUpdateService


def make_data() -> DataGraph:
    data = DataGraph()
    for i in range(6):
        data.add_node(f"n{i}", "A" if i % 2 == 0 else "B")
    for i in range(6):
        data.add_edge(f"n{i}", f"n{(i + 1) % 6}")
    data.add_node("island", "A")  # unreachable from the ring
    return data


def make_pattern() -> PatternGraph:
    pattern = PatternGraph()
    pattern.add_node("p0", "A")
    pattern.add_node("p1", "B")
    pattern.add_edge("p0", "p1", 2)
    return pattern


class Client:
    """One JSON-lines connection."""

    def __init__(self, reader, writer):
        self.reader = reader
        self.writer = writer

    async def call(self, request: dict) -> dict:
        self.writer.write(json.dumps(request).encode() + b"\n")
        await self.writer.drain()
        line = await asyncio.wait_for(self.reader.readline(), timeout=10)
        return json.loads(line)

    async def send_raw(self, raw: bytes) -> dict:
        self.writer.write(raw)
        await self.writer.drain()
        line = await asyncio.wait_for(self.reader.readline(), timeout=10)
        return json.loads(line)

    async def close(self):
        self.writer.close()
        await self.writer.wait_closed()


def test_server_round_trip():
    async def scenario():
        service = StreamingUpdateService(
            ServiceConfig(deadline_seconds=0.0, max_buffer=10_000, coalesce_min_batch=10_000)
        )
        await service.register_graph("g", make_pattern(), make_data())
        server = ServiceServer(service, port=0)
        host, port = await server.start()
        assert port != 0  # ephemeral port was bound and reflected

        reader, writer = await asyncio.open_connection(host, port)
        client = Client(reader, writer)

        assert await client.call({"op": "ping"}) == {"ok": True, "pong": True}
        assert (await client.call({"op": "graphs"}))["graphs"] == ["g"]

        update = await client.call(
            {
                "op": "update",
                "graph": "g",
                "inserts": [{"type": "edge", "source": "n0", "target": "n2"}],
            }
        )
        assert update["ok"] and update["accepted"] == 1
        assert update["cut"] == "deadline"  # zero deadline cuts every payload
        await service.drain()

        stats = await client.call({"op": "stats", "graph": "g"})
        assert stats["ok"] and stats["settled"] == 1

        slen = await client.call(
            {"op": "slen", "graph": "g", "source": "n0", "target": "n2"}
        )
        assert slen == {"ok": True, "distance": 1}
        unreachable = await client.call(
            {"op": "slen", "graph": "g", "source": "n0", "target": "island"}
        )
        assert unreachable == {"ok": True, "distance": None}
        unknown_node = await client.call(
            {"op": "slen", "graph": "g", "source": "n0", "target": "missing"}
        )
        assert unknown_node["ok"] is False

        matches = await client.call({"op": "matches", "graph": "g"})
        assert matches["ok"] and set(matches["matches"]) == {"p0", "p1"}

        one = await client.call(
            {"op": "matches", "graph": "g", "pattern_node": "p0"}
        )
        assert one["ok"] and isinstance(one["matches"], list)

        ranked = await client.call({"op": "top-k", "graph": "g", "k": 2})
        assert ranked["ok"] and set(ranked["top_k"]) == {"p0", "p1"}
        for entries in ranked["top_k"].values():
            assert len(entries) <= 2
            for entry in entries:
                assert set(entry) == {"node", "score"}

        await client.close()
        await server.close()
        await service.close()

    asyncio.run(scenario())


def test_server_error_paths_keep_the_connection_alive():
    async def scenario():
        service = StreamingUpdateService(
            ServiceConfig(deadline_seconds=30.0, max_buffer=10_000, coalesce_min_batch=10_000)
        )
        await service.register_graph("g", make_pattern(), make_data())
        server = ServiceServer(service, port=0)
        host, port = await server.start()
        reader, writer = await asyncio.open_connection(host, port)
        client = Client(reader, writer)

        bad_json = await client.send_raw(b"{nope\n")
        assert bad_json["ok"] is False and "invalid JSON" in bad_json["error"]

        not_object = await client.send_raw(b"[1, 2]\n")
        assert not_object["ok"] is False

        unknown_op = await client.call({"op": "mystery"})
        assert unknown_op["ok"] is False and "unknown op" in unknown_op["error"]

        missing_graph = await client.call({"op": "stats"})
        assert missing_graph["ok"] is False

        unknown_graph = await client.call({"op": "stats", "graph": "nope"})
        assert unknown_graph["ok"] is False and "unknown graph" in unknown_graph["error"]

        bad_delta = await client.call(
            {"op": "update", "graph": "g", "inserts": [{"type": "mystery"}]}
        )
        assert bad_delta["ok"] is False

        # The connection survived all of it.
        assert await client.call({"op": "ping"}) == {"ok": True, "pong": True}

        await client.close()
        await server.close()
        await service.close()

    asyncio.run(scenario())


def test_server_refuses_updates_when_overloaded():
    async def scenario():
        # Quiet config: accepted deltas pile up in the buffer, so the
        # backlog grows by one per update and the cap is easy to hit.
        service = StreamingUpdateService(
            ServiceConfig(deadline_seconds=30.0, max_buffer=10_000, coalesce_min_batch=10_000)
        )
        await service.register_graph("g", make_pattern(), make_data())
        server = ServiceServer(service, port=0, max_pending=2)
        host, port = await server.start()
        reader, writer = await asyncio.open_connection(host, port)
        client = Client(reader, writer)

        def update(source, target):
            return {
                "op": "update",
                "graph": "g",
                "inserts": [{"type": "edge", "source": source, "target": target}],
            }

        assert (await client.call(update("n0", "n2")))["ok"]
        assert (await client.call(update("n0", "n3")))["ok"]
        refused = await client.call(update("n1", "n4"))
        assert refused["ok"] is False
        assert refused["error"] == "overloaded"
        assert refused["overloaded"] is True
        assert refused["retry_after"] > 0
        assert server.overload_rejections == 1
        # Reads are never refused — the graph still answers.
        assert (await client.call({"op": "stats", "graph": "g"}))["ok"]

        # Once the backlog settles, updates are accepted again — the
        # retry_after contract.
        await service.drain()
        accepted = await client.call(update("n1", "n4"))
        assert accepted["ok"] and accepted["accepted"] == 1

        await client.close()
        await server.close()
        await service.close()

    asyncio.run(scenario())


def test_server_closes_idle_connections():
    async def scenario():
        service = StreamingUpdateService(
            ServiceConfig(deadline_seconds=30.0, max_buffer=10_000, coalesce_min_batch=10_000)
        )
        await service.register_graph("g", make_pattern(), make_data())
        server = ServiceServer(service, port=0, idle_timeout=0.1)
        host, port = await server.start()
        reader, writer = await asyncio.open_connection(host, port)
        client = Client(reader, writer)

        # An active connection is not cut off...
        assert await client.call({"op": "ping"}) == {"ok": True, "pong": True}
        # ...but one that goes quiet is told why and closed.
        line = await asyncio.wait_for(reader.readline(), timeout=5)
        notice = json.loads(line)
        assert notice["ok"] is False and notice["idle_timeout"] is True
        assert await asyncio.wait_for(reader.readline(), timeout=5) == b""  # EOF
        assert server.idle_closes == 1

        await client.close()
        await server.close()
        await service.close()

    asyncio.run(scenario())


def test_server_time_travel_reads_respect_subscription_lifetimes():
    async def scenario():
        from repro.graph.io import pattern_graph_to_dict

        service = StreamingUpdateService(
            ServiceConfig(
                deadline_seconds=30.0,
                max_buffer=10_000,
                coalesce_min_batch=10_000,
                snapshot_history=8,
            )
        )
        await service.register("g", make_data())
        server = ServiceServer(service, port=0)
        host, port = await server.start()
        reader, writer = await asyncio.open_connection(host, port)
        client = Client(reader, writer)

        subscribed = await client.call(
            {
                "op": "subscribe",
                "graph": "g",
                "pattern_id": "p",
                "pattern": pattern_graph_to_dict(make_pattern()),
            }
        )
        assert subscribed["ok"]

        async def settle(source, target):
            response = await client.call(
                {
                    "op": "update",
                    "graph": "g",
                    "inserts": [{"type": "edge", "source": source, "target": target}],
                }
            )
            assert response["ok"]
            await service.drain()

        await settle("n0", "n2")  # version 1 carries "p"
        at_v1 = await client.call(
            {"op": "matches", "graph": "g", "pattern_id": "p"}
        )
        assert at_v1["ok"]
        await settle("n0", "n3")  # version 2

        dropped = await client.call(
            {"op": "unsubscribe", "graph": "g", "pattern_id": "p", "drop": True}
        )
        assert dropped["ok"] and dropped["dropped"]

        # Present-time read of the dropped pattern: clean error, the
        # connection survives.
        now = await client.call({"op": "matches", "graph": "g", "pattern_id": "p"})
        assert now["ok"] is False and "no subscription 'p'" in now["error"]
        # Time travel to the retained version still serves the frozen
        # state over the wire.
        then = await client.call(
            {"op": "matches", "graph": "g", "pattern_id": "p", "as_of": 1}
        )
        assert then["ok"] and then["matches"] == at_v1["matches"]

        # A pattern subscribed late is absent from versions that
        # predate it: clean error naming the version, not a stale read.
        late = await client.call(
            {
                "op": "subscribe",
                "graph": "g",
                "pattern_id": "late",
                "pattern": pattern_graph_to_dict(make_pattern()),
            }
        )
        assert late["ok"]
        early = await client.call(
            {"op": "matches", "graph": "g", "pattern_id": "late", "as_of": 1}
        )
        assert early["ok"] is False
        assert "no subscription 'late' in snapshot version 1" in early["error"]
        # The connection took every error in stride.
        assert await client.call({"op": "ping"}) == {"ok": True, "pong": True}

        await client.close()
        await server.close()
        await service.close()

    asyncio.run(scenario())
