"""StreamingUpdateService: serialization, admission, drain, non-blocking reads."""

import asyncio
import time

import pytest

from repro.graph import DataGraph, PatternGraph
from repro.matching import bounded_simulation
from repro.service import (
    CUT_CAPACITY,
    CUT_CROSSOVER,
    CUT_DEADLINE,
    CUT_DRAIN,
    DeltaError,
    ServiceConfig,
    ServiceError,
    StreamingUpdateService,
)
from repro.service.service import default_algorithm_factory
from repro.spl.matrix import SLenMatrix


def make_data(num_nodes: int = 10) -> DataGraph:
    """A deterministic ring over ``num_nodes`` labelled nodes."""
    data = DataGraph()
    for i in range(num_nodes):
        data.add_node(f"n{i}", "A" if i % 2 == 0 else "B")
    for i in range(num_nodes):
        data.add_edge(f"n{i}", f"n{(i + 1) % num_nodes}")
    return data


def make_pattern() -> PatternGraph:
    pattern = PatternGraph()
    pattern.add_node("p0", "A")
    pattern.add_node("p1", "B")
    pattern.add_edge("p0", "p1", 2)
    return pattern


def edge_spec(source: str, target: str) -> dict:
    return {"type": "edge", "source": source, "target": target}


#: A config whose deadline/crossover/capacity triggers all stay out of
#: the way, so tests trigger cuts explicitly (via drain) or pick one
#: trigger deliberately.
QUIET = dict(deadline_seconds=30.0, max_buffer=10_000, coalesce_min_batch=10_000)


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Queue serialization: concurrent writers == sequential oracle
# ----------------------------------------------------------------------
def test_concurrent_writers_settle_to_the_sequential_oracle():
    async def scenario():
        data = make_data(12)
        service = StreamingUpdateService(ServiceConfig(**QUIET))
        await service.register_graph("g", make_pattern(), data)

        # Each writer owns a disjoint set of non-ring pairs and toggles
        # them an odd number of times, so the expected final graph is
        # the initial one plus every owned pair — independent of how the
        # writers' submissions interleave.
        owned = {
            0: [("n0", "n2"), ("n0", "n3")],
            1: [("n1", "n4"), ("n1", "n5")],
            2: [("n2", "n6"), ("n2", "n7")],
        }

        async def writer(pairs):
            for source, target in pairs:
                for _ in range(3):  # insert, delete, insert
                    await service.submit("g", {"inserts": [edge_spec(source, target)]})
                    await service.submit("g", {"deletes": [edge_spec(source, target)]})
                await service.submit("g", {"inserts": [edge_spec(source, target)]})

        await asyncio.gather(*(writer(pairs) for pairs in owned.values()))
        await service.drain()

        expected = data.copy()
        for pairs in owned.values():
            for source, target in pairs:
                expected.add_edge(source, target)
        snapshot = service.snapshot("g")
        assert snapshot.data == expected
        # The settled SLen and match result agree with a from-scratch
        # recomputation on the expected graph (the oracle).
        oracle_slen = SLenMatrix.from_graph(expected)
        assert snapshot.slen == oracle_slen
        oracle_result = bounded_simulation(make_pattern(), expected, oracle_slen)
        assert snapshot.result.as_dict() == dict(oracle_result)

        stats = service.stats("g")
        # 3 writers x 2 owned pairs x 7 toggles per pair, none rejected.
        assert stats["rejected"] == 0
        assert stats["accepted"] == stats["settled"] == 3 * 2 * 7
        await service.close()

    run(scenario())


# ----------------------------------------------------------------------
# Admission triggers
# ----------------------------------------------------------------------
def test_deadline_expiry_cuts_the_buffer():
    async def scenario():
        service = StreamingUpdateService(
            ServiceConfig(deadline_seconds=0.05, max_buffer=10_000, coalesce_min_batch=10_000)
        )
        await service.register_graph("g", make_pattern(), make_data())
        receipt = await service.submit("g", {"inserts": [edge_spec("n0", "n2")]})
        assert receipt.cut is None
        assert receipt.pending == 1
        assert service.snapshot("g").version == 0

        deadline = time.monotonic() + 5.0
        while service.stats("g")["settles"] < 1:
            assert time.monotonic() < deadline, "deadline cut never settled"
            await asyncio.sleep(0.01)
        stats = service.stats("g")
        assert stats["cut_reasons"] == {CUT_DEADLINE: 1}
        assert stats["pending"] == 0
        snapshot = service.snapshot("g")
        assert snapshot.version == 1
        assert snapshot.data.has_edge("n0", "n2")
        await service.close()

    run(scenario())


def test_planner_crossover_cuts_immediately():
    async def scenario():
        service = StreamingUpdateService(
            ServiceConfig(deadline_seconds=30.0, max_buffer=10_000, coalesce_min_batch=4)
        )
        await service.register_graph("g", make_pattern(), make_data(40))
        # A deletion-heavy batch past the cost model's coalescing
        # crossover routes off per-update maintenance, which is the
        # service's cut signal (32 deletions on 40 nodes prices
        # coalesced below per-update under the shipped calibration).
        receipt = await service.submit(
            "g",
            {"deletes": [edge_spec(f"n{i}", f"n{i + 1}") for i in range(32)]},
        )
        assert receipt.cut == CUT_CROSSOVER
        assert receipt.pending == 0
        await service.drain()
        assert service.stats("g")["cut_reasons"] == {CUT_CROSSOVER: 1}
        assert not service.snapshot("g").data.has_edge("n0", "n1")
        await service.close()

    run(scenario())


def test_capacity_backstop_cuts_when_buffer_fills():
    async def scenario():
        service = StreamingUpdateService(
            ServiceConfig(deadline_seconds=30.0, max_buffer=3, coalesce_min_batch=10_000)
        )
        await service.register_graph("g", make_pattern(), make_data())
        receipt = await service.submit(
            "g",
            {
                "inserts": [
                    edge_spec("n0", "n2"),
                    edge_spec("n0", "n3"),
                    edge_spec("n0", "n4"),
                ]
            },
        )
        assert receipt.cut == CUT_CAPACITY
        await service.drain()
        assert service.stats("g")["cut_reasons"] == {CUT_CAPACITY: 1}
        await service.close()

    run(scenario())


def test_zero_deadline_cuts_every_payload():
    async def scenario():
        service = StreamingUpdateService(
            ServiceConfig(deadline_seconds=0.0, max_buffer=10_000, coalesce_min_batch=10_000)
        )
        await service.register_graph("g", make_pattern(), make_data())
        receipt = await service.submit("g", {"inserts": [edge_spec("n0", "n2")]})
        assert receipt.cut == CUT_DEADLINE
        await service.drain()
        assert service.snapshot("g").version == 1
        await service.close()

    run(scenario())


# ----------------------------------------------------------------------
# Graceful drain: nothing accepted is ever lost
# ----------------------------------------------------------------------
def test_close_settles_every_accepted_delta():
    async def scenario():
        data = make_data(12)
        service = StreamingUpdateService(ServiceConfig(**QUIET))
        await service.register_graph("g", make_pattern(), data)
        pairs = [("n0", f"n{i}") for i in range(2, 11)]
        for source, target in pairs:
            receipt = await service.submit("g", {"inserts": [edge_spec(source, target)]})
            assert receipt.accepted == 1
            assert receipt.cut is None  # nothing triggers; close must flush
        assert service.snapshot("g").version == 0
        await service.close()
        stats = service.stats("g")
        assert stats["settled"] == stats["accepted"] == len(pairs)
        assert stats["pending"] == 0
        assert stats["cut_reasons"] == {CUT_DRAIN: 1}
        snapshot = service.snapshot("g")
        for source, target in pairs:
            assert snapshot.data.has_edge(source, target)
        assert not service.errors

    run(scenario())


# ----------------------------------------------------------------------
# Reads never block behind a settling batch
# ----------------------------------------------------------------------
def test_reads_answer_from_last_snapshot_while_settle_is_in_flight():
    async def scenario():
        settle_started = asyncio.Event()
        release_settle = None  # threading.Event, created below
        import threading

        release_settle = threading.Event()
        loop = asyncio.get_running_loop()

        def slow_factory(pattern, data, config, telemetry):
            algorithm = default_algorithm_factory(pattern, data, config, telemetry)
            inner = algorithm.subsequent_query

            def slow(batch):
                loop.call_soon_threadsafe(settle_started.set)
                assert release_settle.wait(timeout=10), "test never released settle"
                return inner(batch)

            algorithm.subsequent_query = slow
            return algorithm

        service = StreamingUpdateService(
            ServiceConfig(deadline_seconds=0.0, max_buffer=10_000, coalesce_min_batch=10_000),
            algorithm_factory=slow_factory,
        )
        await service.register_graph("g", make_pattern(), make_data())
        baseline = service.snapshot("g")

        receipt = await service.submit("g", {"inserts": [edge_spec("n0", "n2")]})
        assert receipt.cut == CUT_DEADLINE
        await asyncio.wait_for(settle_started.wait(), timeout=10)

        # The settle is now provably in flight (and blocked).  Reads
        # must return promptly from the last published snapshot.
        started = time.perf_counter()
        snapshot = service.snapshot("g")
        matched = service.matches("g")
        distance = service.slen_distance("g", "n0", "n1")
        elapsed = time.perf_counter() - started
        assert elapsed < 0.5, f"reads stalled {elapsed:.3f}s behind the settle"
        assert snapshot.version == baseline.version == 0
        assert not snapshot.data.has_edge("n0", "n2")
        assert set(matched) == set(baseline.result.as_dict())
        assert distance == 1

        release_settle.set()
        await service.drain()
        settled = service.snapshot("g")
        assert settled.version == 1
        assert settled.data.has_edge("n0", "n2")
        await service.close()

    run(scenario())


# ----------------------------------------------------------------------
# Validation: staged state, rejections, addressing
# ----------------------------------------------------------------------
def test_validation_sees_buffered_but_unsettled_deltas():
    async def scenario():
        service = StreamingUpdateService(ServiceConfig(**QUIET))
        await service.register_graph("g", make_pattern(), make_data())
        first = await service.submit("g", {"inserts": [edge_spec("n0", "n2")]})
        assert (first.accepted, first.rejected) == (1, 0)
        # Still buffered — yet the duplicate must be rejected against
        # the staged state, not the settled one.
        second = await service.submit("g", {"inserts": [edge_spec("n0", "n2")]})
        assert (second.accepted, second.rejected) == (0, 1)
        assert "already exists" in second.errors[0]
        await service.close()
        assert service.stats("g")["settled"] == 1

    run(scenario())


def test_invalid_deltas_are_rejected_with_reasons_and_valid_ones_kept():
    async def scenario():
        service = StreamingUpdateService(ServiceConfig(**QUIET))
        await service.register_graph("g", make_pattern(), make_data())
        receipt = await service.submit(
            "g",
            {
                "inserts": [
                    edge_spec("n0", "n1"),      # already exists (ring edge)
                    edge_spec("n0", "ghost"),   # missing endpoint
                    edge_spec("n0", "n2"),      # fine
                    {"type": "node", "node": "n0", "labels": ["A"]},  # exists
                ],
                "deletes": [
                    edge_spec("n0", "n5"),      # no such edge
                    {"type": "node", "node": "ghost"},  # no such node
                ],
            },
        )
        assert receipt.accepted == 1
        assert receipt.rejected == 5
        assert len(receipt.errors) == 5
        await service.close()
        snapshot = service.snapshot("g")
        assert snapshot.data.has_edge("n0", "n2")

    run(scenario())


def test_node_insert_payload_edges_are_validated():
    async def scenario():
        service = StreamingUpdateService(ServiceConfig(**QUIET))
        await service.register_graph("g", make_pattern(), make_data())
        bad = await service.submit(
            "g",
            {
                "inserts": [
                    {
                        "type": "node",
                        "node": "fresh",
                        "labels": ["A"],
                        "edges": [["fresh", "ghost"]],
                    }
                ]
            },
        )
        assert (bad.accepted, bad.rejected) == (0, 1)
        good = await service.submit(
            "g",
            {
                "inserts": [
                    {
                        "type": "node",
                        "node": "fresh",
                        "labels": ["A"],
                        "edges": [["fresh", "n0"], ["n1", "fresh"]],
                    }
                ]
            },
        )
        assert (good.accepted, good.rejected) == (1, 0)
        await service.close()
        snapshot = service.snapshot("g")
        assert snapshot.data.has_node("fresh")
        assert snapshot.data.has_edge("fresh", "n0")
        assert snapshot.data.has_edge("n1", "fresh")

    run(scenario())


def test_unknown_graph_and_duplicate_registration_raise():
    async def scenario():
        service = StreamingUpdateService(ServiceConfig(**QUIET))
        with pytest.raises(ServiceError, match="unknown graph"):
            await service.submit("nope", {"inserts": []})
        with pytest.raises(ServiceError, match="unknown graph"):
            service.snapshot("nope")
        await service.register_graph("g", make_pattern(), make_data())
        with pytest.raises(ServiceError, match="already registered"):
            await service.register_graph("g", make_pattern(), make_data())
        await service.close()

    run(scenario())


def test_payload_addressed_to_a_different_graph_is_refused():
    async def scenario():
        service = StreamingUpdateService(ServiceConfig(**QUIET))
        await service.register_graph("g", make_pattern(), make_data())
        with pytest.raises(DeltaError, match="addresses graph"):
            await service.submit("g", {"graph": "other", "inserts": []})
        await service.close()

    run(scenario())


def test_graphs_are_independent():
    async def scenario():
        service = StreamingUpdateService(ServiceConfig(**QUIET))
        await service.register_graph("a", make_pattern(), make_data())
        await service.register_graph("b", make_pattern(), make_data())
        await service.submit("a", {"inserts": [edge_spec("n0", "n2")]})
        await service.close()
        assert service.snapshot("a").data.has_edge("n0", "n2")
        assert not service.snapshot("b").data.has_edge("n0", "n2")
        assert service.stats("b")["accepted"] == 0
        assert sorted(service.graphs) == ["a", "b"]

    run(scenario())


def test_telemetry_is_saved_on_close(tmp_path):
    async def scenario():
        path = tmp_path / "service_telemetry.json"
        service = StreamingUpdateService(
            ServiceConfig(
                deadline_seconds=0.0,
                max_buffer=10_000,
                coalesce_min_batch=10_000,
                telemetry_path=str(path),
            )
        )
        await service.register_graph("g", make_pattern(), make_data())
        await service.submit("g", {"inserts": [edge_spec("n0", "n2")]})
        await service.close()
        assert path.exists()

        from repro.batching.telemetry import TelemetryLog

        assert len(TelemetryLog.load(path)) >= 1

    run(scenario())
