"""Delta payload parsing: wire shapes, validation, lowering order."""

import pytest

from repro.graph.updates import (
    EdgeDeletion,
    EdgeInsertion,
    NodeDeletion,
    NodeInsertion,
)
from repro.service import DeltaError, UpdateData


def test_flat_shape_parses():
    payload = UpdateData(
        {
            "graph": "g",
            "inserts": [{"type": "edge", "source": "a", "target": "b"}],
            "deletes": [{"type": "edge", "source": "c", "target": "d"}],
        }
    )
    assert payload.graph == "g"
    assert len(payload.inserts) == 1
    assert len(payload.deletes) == 1
    assert len(payload) == 2


def test_nested_delta_shape_parses():
    payload = UpdateData(
        {
            "graph": "g",
            "delta": {
                "inserts": [{"type": "edge", "source": "a", "target": "b"}],
                "deletes": [],
            },
        }
    )
    assert len(payload.inserts) == 1
    assert len(payload.deletes) == 0


def test_default_graph_key_applies_when_payload_omits_it():
    payload = UpdateData({"inserts": []}, default_graph="social")
    assert payload.graph == "social"
    explicit = UpdateData({"graph": "other", "inserts": []}, default_graph="social")
    assert explicit.graph == "other"


def test_updates_lower_deletes_before_inserts():
    payload = UpdateData(
        {
            "inserts": [{"type": "edge", "source": "a", "target": "b"}],
            "deletes": [{"type": "edge", "source": "a", "target": "b"}],
        }
    )
    updates = payload.updates()
    assert isinstance(updates[0], EdgeDeletion)
    assert isinstance(updates[1], EdgeInsertion)


def test_node_specs_lower_to_node_updates():
    payload = UpdateData(
        {
            "inserts": [
                {
                    "type": "node",
                    "node": "n9",
                    "labels": ["SE"],
                    "edges": [["n9", "a"], ["b", "n9"]],
                }
            ],
            "deletes": [{"type": "node", "node": "n1"}],
        }
    )
    delete, insert = payload.updates()
    assert isinstance(delete, NodeDeletion) and delete.node == "n1"
    assert isinstance(insert, NodeInsertion)
    assert insert.node == "n9"
    assert insert.labels == ("SE",)
    assert insert.edges == (("n9", "a"), ("b", "n9"))


def test_edge_spec_is_the_default_type():
    payload = UpdateData({"inserts": [{"source": "a", "target": "b"}]})
    assert isinstance(payload.updates()[0], EdgeInsertion)


@pytest.mark.parametrize(
    "bad",
    [
        "not a mapping",
        {"inserts": "nope"},
        {"deletes": {"source": "a"}},
        {"graph": 7, "inserts": []},
        {"delta": "nope"},
        {"inserts": [{"type": "mystery"}]},
        {"inserts": [{"type": "edge", "source": "a"}]},
        {"inserts": [{"type": "edge", "source": "a", "target": "b", "node": "x"}]},
        {"inserts": [{"type": "node"}]},
        {"inserts": [{"type": "node", "node": "x"}]},  # insert needs labels
        {"inserts": [{"type": "node", "node": "x", "labels": [7]}]},
        {"inserts": [{"type": "node", "node": "x", "labels": ["L"], "edges": [["a"]]}]},
        {"inserts": [{"type": "node", "node": "x", "labels": ["L"], "edges": "ab"}]},
    ],
)
def test_malformed_payloads_raise(bad):
    with pytest.raises(DeltaError):
        UpdateData(bad)


def test_delete_node_spec_needs_no_labels():
    payload = UpdateData({"deletes": [{"type": "node", "node": "x"}]})
    assert isinstance(payload.updates()[0], NodeDeletion)
