"""``ua-gpnm serve`` signal handling: SIGTERM/SIGINT drain and exit 0."""

import os
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

import pytest

SRC = str(Path(__file__).resolve().parents[2] / "src")


def start_serve(*extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    process = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--preset",
            "tiny",
            "--dataset",
            "email-EU-core",
            "--port",
            "0",
            *extra_args,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )
    return process


def wait_for_ready(process, timeout=60.0):
    """Read stderr until the '[serve] ... on host:port' banner; return the port."""
    deadline = time.monotonic() + timeout
    lines = []
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        if not line:
            if process.poll() is not None:
                raise AssertionError(
                    f"serve exited early ({process.returncode}): {''.join(lines)}"
                )
            continue
        lines.append(line)
        if " on " in line and line.startswith("[serve] graph"):
            return int(line.rsplit(":", 1)[1].strip())
    raise AssertionError(f"serve never became ready: {''.join(lines)}")


def finish(process, timeout=30.0):
    try:
        _, stderr = process.communicate(timeout=timeout)
    except subprocess.TimeoutExpired:
        process.kill()
        process.communicate()
        raise AssertionError("serve did not exit after the signal")
    return stderr


@pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
def test_serve_signal_drains_and_exits_zero(signum):
    process = start_serve()
    try:
        port = wait_for_ready(process)
        # The server is actually answering before we shoot it.
        with socket.create_connection(("127.0.0.1", port), timeout=10) as conn:
            conn.sendall(b'{"op": "ping"}\n')
            reply = conn.makefile().readline()
            assert '"pong": true' in reply
        process.send_signal(signum)
        stderr = finish(process)
        assert process.returncode == 0, stderr
        assert "shutting down" in stderr
        assert "shutdown complete" in stderr
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()


def test_serve_with_journal_reports_recovery(tmp_path):
    journal_dir = str(tmp_path / "journals")
    process = start_serve("--journal-dir", journal_dir)
    try:
        port = wait_for_ready(process)
        # The recovery banner prints right after the ready banner.
        journal_line = process.stderr.readline()
        assert journal_line.startswith("[serve] journal")
        assert "recovered 0 delta(s)" in journal_line  # fresh journal
        with socket.create_connection(("127.0.0.1", port), timeout=10) as conn:
            conn.sendall(b'{"op": "stats", "graph": "email-EU-core"}\n')
            reply = conn.makefile().readline()
            assert '"journal"' in reply
        process.send_signal(signal.SIGTERM)
        stderr = finish(process)
        assert process.returncode == 0, stderr
    finally:
        if process.poll() is None:
            process.kill()
            process.communicate()
