"""Multi-pattern subscriptions: shared maintenance, fan-out, push, recovery.

The load-bearing suite of the subscription system:

* **Equivalence** — after every settle, every subscription's matches
  and top-k equal a from-scratch oracle (``bounded_simulation`` /
  ``top_k_matches``) on the settled snapshot, across seeds and across
  skewed persona workloads.  This is what makes the shared-delta
  fan-out (one maintenance pass + per-pattern amendment with a
  label-intersection skip filter) trustworthy.
* **Shared maintenance** — with 32 standing patterns one settle runs
  exactly one maintenance/SLen pass (telemetry counters), the
  acceptance criterion of the whole design.
* **Durability** — subscriptions ride the journal (subscribe and
  unsubscribe records, compaction snapshots) and recover after a
  simulated crash.
* **Push** — listeners receive per-pattern deltas that describe
  exactly the relation change the settle published.
"""

import asyncio
import warnings

import pytest

from repro.graph import DataGraph, PatternGraph
from repro.matching import MatchResult, bounded_simulation, top_k_matches
from repro.service import (
    DEFAULT_PATTERN_ID,
    ServiceConfig,
    ServiceError,
    StreamingUpdateService,
    reset_register_deprecation_warning,
)
from repro.service.service import default_algorithm_factory
from repro.spl.matrix import SLenMatrix
from repro.workloads.pattern_gen import PatternSpec, generate_pattern
from repro.workloads.update_gen import UPDATE_PERSONAS, UpdateWorkloadSpec, generate_update_batch


def make_data(num_nodes: int = 12) -> DataGraph:
    """A labelled ring with a few chords (labels A/B/C cycle)."""
    labels = ("A", "B", "C")
    data = DataGraph()
    for i in range(num_nodes):
        data.add_node(f"n{i}", labels[i % 3])
    for i in range(num_nodes):
        data.add_edge(f"n{i}", f"n{(i + 1) % num_nodes}")
    for i in range(0, num_nodes, 3):
        data.add_edge(f"n{i}", f"n{(i + 2) % num_nodes}")
    return data


def make_pattern(label_a: str = "A", label_b: str = "B", bound: int = 2) -> PatternGraph:
    pattern = PatternGraph()
    pattern.add_node("p0", label_a)
    pattern.add_node("p1", label_b)
    pattern.add_edge("p0", "p1", bound)
    return pattern


def diverse_patterns(count: int, seed: int = 11) -> list[PatternGraph]:
    """``count`` distinct generated patterns over the A/B/C label set."""
    patterns = []
    for position in range(count):
        size = 2 + position % 4
        patterns.append(
            generate_pattern(
                PatternSpec(
                    num_nodes=size,
                    num_edges=size,
                    labels=("A", "B", "C"),
                    seed=seed + position,
                )
            )
        )
    return patterns


def edge_spec(source: str, target: str) -> dict:
    return {"type": "edge", "source": source, "target": target}


QUIET = dict(deadline_seconds=30.0, max_buffer=10_000, coalesce_min_batch=10_000)


def run(coro):
    return asyncio.run(coro)


def assert_matches_oracle(service: StreamingUpdateService, key: str, k: int = 3) -> None:
    """Every subscription's published matches/top-k == from-scratch oracle."""
    snapshot = service.snapshot(key)
    oracle_slen = SLenMatrix.from_graph(snapshot.data)
    assert snapshot.slen == oracle_slen
    for pattern_id, state in snapshot.subscriptions.items():
        # Published state is totality-enforced, so the oracle must apply
        # the same all-or-nothing collapse to the raw simulation.
        oracle = MatchResult(
            bounded_simulation(state.pattern, snapshot.data, oracle_slen),
            enforce_totality=True,
        )
        assert service.matches(key, pattern_id=pattern_id) == oracle.as_dict(), pattern_id
        ranked = service.top_k(key, k, pattern_id=pattern_id)
        oracle_ranked = top_k_matches(
            oracle, state.pattern, snapshot.data, oracle_slen, k
        )
        assert ranked == oracle_ranked, pattern_id


def batch_to_payload(batch) -> list[dict]:
    """Lower a generated update batch to wire payloads (one per update)."""
    from repro.graph.updates import EdgeDeletion, EdgeInsertion, NodeDeletion, NodeInsertion

    payloads = []
    for update in batch:
        if isinstance(update, EdgeInsertion):
            payloads.append({"inserts": [edge_spec(update.source, update.target)]})
        elif isinstance(update, EdgeDeletion):
            payloads.append({"deletes": [edge_spec(update.source, update.target)]})
        elif isinstance(update, NodeInsertion):
            payloads.append(
                {
                    "inserts": [
                        {
                            "type": "node",
                            "node": update.node,
                            "labels": list(update.labels),
                            "edges": [list(edge) for edge in update.edges],
                        }
                    ]
                }
            )
        elif isinstance(update, NodeDeletion):
            payloads.append({"deletes": [{"type": "node", "node": update.node}]})
    return payloads


# ----------------------------------------------------------------------
# Equivalence: every subscription == its standalone oracle, every settle
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", [0, 1, 2])
def test_many_pattern_equivalence_across_settles(seed):
    async def scenario():
        service = StreamingUpdateService(ServiceConfig(**QUIET))
        await service.register("g", make_data(15))
        for position, pattern in enumerate(diverse_patterns(6, seed=seed * 17 + 3)):
            await service.subscribe("g", f"q{position}", pattern, k=3)
        assert_matches_oracle(service, "g")

        spec = UpdateWorkloadSpec(0, 30, seed=seed * 31 + 7)
        batch = generate_update_batch(service.snapshot("g").data, PatternGraph(), spec)
        for payload in batch_to_payload(batch):
            receipt = await service.submit("g", payload)
            assert receipt.rejected == 0
            await service.drain()  # settle after every payload
            assert_matches_oracle(service, "g")
        await service.close()

    run(scenario())


@pytest.mark.parametrize("persona", UPDATE_PERSONAS)
def test_equivalence_under_persona_workloads(persona):
    async def scenario():
        service = StreamingUpdateService(ServiceConfig(**QUIET))
        await service.register("g", make_data(18))
        for position, pattern in enumerate(diverse_patterns(4, seed=5)):
            await service.subscribe("g", f"q{position}", pattern, k=2)

        spec = UpdateWorkloadSpec(0, 40, seed=23, persona=persona)
        batch = generate_update_batch(service.snapshot("g").data, PatternGraph(), spec)
        payloads = batch_to_payload(batch)
        # Settle in chunks, not per payload: personas exercise batched
        # (coalesced) maintenance through the fan-out too.
        for start in range(0, len(payloads), 8):
            for payload in payloads[start : start + 8]:
                await service.submit("g", payload)
            await service.drain()
            assert_matches_oracle(service, "g")
        await service.close()

    run(scenario())


# ----------------------------------------------------------------------
# Shared maintenance: one pass per settle, regardless of pattern count
# ----------------------------------------------------------------------
def test_32_patterns_one_maintenance_pass_per_settle():
    async def scenario():
        service = StreamingUpdateService(ServiceConfig(**QUIET))
        await service.register("g", make_data(15))
        for position, pattern in enumerate(diverse_patterns(32, seed=2)):
            await service.subscribe("g", f"q{position}", pattern)
        assert len(service.snapshot("g").subscriptions) == 32

        for source, target in [("n0", "n4"), ("n1", "n5"), ("n2", "n7")]:
            await service.submit("g", {"inserts": [edge_spec(source, target)]})
            await service.drain()

        stats = service.stats("g")
        settles = stats["settles"]
        assert settles == 3
        # THE acceptance criterion: the pattern-independent work ran
        # exactly once per settle, not once per subscription.
        assert stats["shared"]["maintenance_passes"] == settles
        assert stats["shared"]["slen_update_passes"] == settles
        # Every subscription was either amended or provably skipped.
        assert (
            stats["shared"]["fanout_amend_passes"] + stats["shared"]["fanout_skips"]
            == 32 * settles
        )
        assert_matches_oracle(service, "g")
        await service.close()

    run(scenario())


def test_label_filter_skips_untouched_patterns():
    async def scenario():
        service = StreamingUpdateService(ServiceConfig(**QUIET))
        data = make_data(12)
        data.add_node("x0", "X")
        data.add_node("x1", "X")
        await service.register("g", data)
        await service.subscribe("g", "ab", make_pattern("A", "B"))
        await service.subscribe("g", "xx", make_pattern("X", "X", bound=1))

        # An edge between X-labelled islands cannot touch the A/B pattern.
        await service.submit("g", {"inserts": [edge_spec("x0", "x1")]})
        await service.drain()
        stats = service.stats("g")
        assert stats["subscriptions"]["ab"]["skipped_settles"] == 1
        assert stats["subscriptions"]["xx"]["amend_passes"] == 1
        assert_matches_oracle(service, "g")
        await service.close()

    run(scenario())


# ----------------------------------------------------------------------
# Registry semantics
# ----------------------------------------------------------------------
def test_duplicate_cap_and_unknown_pattern_errors():
    async def scenario():
        service = StreamingUpdateService(ServiceConfig(max_subscriptions=2, **QUIET))
        await service.register("g", make_data())
        await service.subscribe("g", "q0", make_pattern())
        with pytest.raises(ServiceError, match="already has subscription"):
            await service.subscribe("g", "q0", make_pattern("B", "C"))
        # replace=True swaps the pattern in place.
        state = await service.subscribe("g", "q0", make_pattern("B", "C"), replace=True)
        assert state.pattern.label_of("p0") == "B"
        await service.subscribe("g", "q1", make_pattern())
        with pytest.raises(ServiceError, match="subscription cap"):
            await service.subscribe("g", "q2", make_pattern())
        with pytest.raises(ServiceError, match="no subscription"):
            service.matches("g", pattern_id="nope")
        assert await service.unsubscribe("g", "nope") is False
        assert await service.unsubscribe("g", "q1") is True
        assert service.snapshot("g").pattern_ids == ("q0",)
        await service.close()

    run(scenario())


def test_unsubscribe_mid_settle_is_serialized():
    async def scenario():
        release = asyncio.Event()
        loop = asyncio.get_running_loop()

        def slow_factory(pattern, data, config, telemetry):
            algorithm = default_algorithm_factory(pattern, data, config, telemetry)
            inner = algorithm.subsequent_query

            def slow(batch):
                # Block the settle (executor thread) until released.
                asyncio.run_coroutine_threadsafe(release.wait(), loop).result(10)
                return inner(batch)

            algorithm.subsequent_query = slow
            return algorithm

        service = StreamingUpdateService(
            ServiceConfig(**QUIET), algorithm_factory=slow_factory
        )
        await service.register("g", make_data())
        await service.subscribe("g", "q0", make_pattern())
        await service.subscribe("g", "q1", make_pattern("B", "C"))

        await service.submit("g", {"inserts": [edge_spec("n0", "n2")]})
        await service.drain()  # noop: nothing cut yet (quiet config)

        # Cut + settle is now in flight (blocked); unsubscribe while hot.
        future = service.submit_nowait("g", {"inserts": [edge_spec("n0", "n4")]})
        drop = asyncio.ensure_future(service.unsubscribe("g", "q1"))
        await asyncio.sleep(0.05)
        release.set()
        await future
        assert await drop is True
        await service.drain()

        snapshot = service.snapshot("g")
        assert "q1" not in snapshot.subscriptions
        assert_matches_oracle(service, "g")
        await service.close()

    run(scenario())


# ----------------------------------------------------------------------
# Push channel
# ----------------------------------------------------------------------
def test_listener_receives_exact_relation_delta():
    async def scenario():
        service = StreamingUpdateService(ServiceConfig(**QUIET))
        data = DataGraph()
        for node, label in [("a0", "A"), ("b0", "B"), ("b1", "B")]:
            data.add_node(node, label)
        data.add_edge("a0", "b0")
        await service.register("g", data)
        await service.subscribe("g", "q", make_pattern("A", "B", bound=1), k=2)
        before = service.matches("g", pattern_id="q")

        received = []
        service.attach_listener("g", "q", received.append)
        await service.submit("g", {"inserts": [edge_spec("a0", "b1")]})
        await service.drain()

        after = service.matches("g", pattern_id="q")
        assert len(received) == 1
        delta = received[0]
        assert delta.graph == "g" and delta.pattern_id == "q"
        assert delta.version == service.snapshot("g").version
        for pattern_node in set(before) | set(after):
            added = after.get(pattern_node, frozenset()) - before.get(pattern_node, frozenset())
            removed = before.get(pattern_node, frozenset()) - after.get(pattern_node, frozenset())
            assert delta.added.get(pattern_node, frozenset()) == added
            assert delta.removed.get(pattern_node, frozenset()) == removed
        assert delta.top_k is not None  # ranking changed with the new match

        # A detached listener stays silent.
        token = service.attach_listener("g", "q", received.append)
        assert service.detach_listener("g", "q", token) is True
        await service.submit("g", {"deletes": [edge_spec("a0", "b1")]})
        await service.drain()
        assert len(received) == 2  # only the still-attached listener fired
        await service.close()

    run(scenario())


def test_push_notifications_config_off_silences_listeners():
    async def scenario():
        service = StreamingUpdateService(
            ServiceConfig(push_notifications=False, **QUIET)
        )
        await service.register("g", make_data())
        await service.subscribe("g", "q", make_pattern())
        received = []
        service.attach_listener("g", "q", received.append)
        await service.submit("g", {"inserts": [edge_spec("n0", "n2")]})
        await service.drain()
        assert received == []
        assert_matches_oracle(service, "g")  # reads still serve
        await service.close()

    run(scenario())


def test_raising_listener_does_not_fail_the_settle():
    async def scenario():
        service = StreamingUpdateService(ServiceConfig(**QUIET))
        await service.register("g", make_data())
        await service.subscribe("g", "q", make_pattern())

        def bad_listener(delta):
            raise RuntimeError("client bug")

        received = []
        service.attach_listener("g", "q", bad_listener)
        service.attach_listener("g", "q", received.append)
        await service.submit("g", {"deletes": [edge_spec("n0", "n1")]})
        await service.drain()
        assert service.errors == []
        assert len(received) == 1  # the healthy listener still fired
        await service.close()

    run(scenario())


# ----------------------------------------------------------------------
# Durability: subscriptions ride the journal
# ----------------------------------------------------------------------
def test_subscriptions_recover_after_crash(tmp_path):
    async def scenario():
        config = ServiceConfig(journal_dir=str(tmp_path), **QUIET)
        service = StreamingUpdateService(config)
        await service.register("g", make_data())
        await service.subscribe("g", "q0", make_pattern(), k=2)
        await service.subscribe("g", "q1", make_pattern("B", "C"))
        await service.subscribe("g", "gone", make_pattern("C", "A"))
        await service.unsubscribe("g", "gone")
        await service.submit("g", {"inserts": [edge_spec("n0", "n2")]})
        await service.drain()
        expected = {
            pattern_id: service.matches("g", pattern_id=pattern_id)
            for pattern_id in ("q0", "q1")
        }
        await service.abort()  # simulated kill -9

        revived = StreamingUpdateService(config)
        # register() alone restores the registry from the journal.
        await revived.register("g", make_data())
        await revived.drain()  # flush replayed tail
        snapshot = revived.snapshot("g")
        assert set(snapshot.subscriptions) == {"q0", "q1"}
        assert snapshot.state_for("q0").k == 2
        for pattern_id, matched in expected.items():
            assert revived.matches("g", pattern_id=pattern_id) == matched
        assert_matches_oracle(revived, "g")
        await revived.close()

    run(scenario())


def test_subscriptions_survive_journal_compaction(tmp_path):
    async def scenario():
        # A one-byte threshold compacts after every checkpoint, so the
        # registry must survive *in the compaction snapshot*, not just
        # as replayable subscribe records.
        config = ServiceConfig(
            journal_dir=str(tmp_path), journal_compact_bytes=1, **QUIET
        )
        service = StreamingUpdateService(config)
        await service.register("g", make_data())
        await service.subscribe("g", "q0", make_pattern(), k=2)
        for source, target in [("n0", "n2"), ("n1", "n5"), ("n2", "n7")]:
            await service.submit("g", {"inserts": [edge_spec(source, target)]})
            await service.drain()
        assert service.stats("g")["journal"]["compactions"] >= 1
        expected = service.matches("g", pattern_id="q0")
        await service.abort()

        revived = StreamingUpdateService(config)
        await revived.register("g", make_data())
        await revived.drain()
        assert set(revived.snapshot("g").subscriptions) == {"q0"}
        assert revived.matches("g", pattern_id="q0") == expected
        await revived.close()

    run(scenario())


# ----------------------------------------------------------------------
# The single-pattern shim
# ----------------------------------------------------------------------
def test_register_graph_shim_serves_default_pattern():
    async def scenario():
        reset_register_deprecation_warning()
        service = StreamingUpdateService(ServiceConfig(**QUIET))
        with pytest.warns(DeprecationWarning, match="register_graph.*deprecated"):
            snapshot = await service.register_graph("g", make_pattern(), make_data())
        assert snapshot.pattern_ids == (DEFAULT_PATTERN_ID,)
        # Legacy accessors and pattern-unaddressed reads resolve "default".
        assert snapshot.result.as_dict() == service.matches("g")
        assert service.matches("g") == service.matches("g", pattern_id=DEFAULT_PATTERN_ID)
        await service.submit("g", {"inserts": [edge_spec("n0", "n2")]})
        await service.drain()
        assert_matches_oracle(service, "g")
        await service.close()

    run(scenario())


def test_register_graph_deprecation_warns_once_per_process():
    async def scenario():
        reset_register_deprecation_warning()
        service = StreamingUpdateService(ServiceConfig(**QUIET))
        with pytest.warns(DeprecationWarning):
            await service.register_graph("g1", make_pattern(), make_data())
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            await service.register_graph("g2", make_pattern(), make_data())
        await service.close()
        reset_register_deprecation_warning()

    run(scenario())


# ----------------------------------------------------------------------
# Stats surface
# ----------------------------------------------------------------------
def test_stats_expose_shared_and_per_subscription_sections():
    async def scenario():
        service = StreamingUpdateService(ServiceConfig(**QUIET))
        await service.register("g", make_data())
        await service.subscribe("g", "q", make_pattern(), k=4)
        await service.submit("g", {"inserts": [edge_spec("n0", "n5")]})
        await service.drain()
        stats = service.stats("g")
        assert set(stats["shared"]) == {
            "maintenance_passes",
            "slen_update_passes",
            "fanout_amend_passes",
            "fanout_skips",
            "notifications_sent",
        }
        assert stats["subscriptions"]["q"]["k"] == 4
        assert stats["subscriptions"]["q"]["pattern"]["kind"] == "pattern_graph"
        assert stats["subscriptions"]["q"]["amend_passes"] >= 1
        await service.close()

    run(scenario())


# ----------------------------------------------------------------------
# Time travel x subscriptions: history is frozen, the registry is not
# ----------------------------------------------------------------------
def test_unsubscribed_pattern_stays_readable_at_retained_versions():
    async def scenario():
        service = StreamingUpdateService(ServiceConfig(snapshot_history=8, **QUIET))
        await service.register("g", make_data())
        await service.subscribe("g", "p", make_pattern())
        await service.submit("g", {"inserts": [edge_spec("n0", "n4")]})
        await service.drain()  # version 1 carries "p"
        frozen = service.matches("g", pattern_id="p")
        frozen_top = service.top_k("g", 2, pattern_id="p")
        await service.submit("g", {"inserts": [edge_spec("n1", "n5")]})
        await service.drain()  # version 2
        assert await service.unsubscribe("g", "p")

        # The latest snapshot (v2, republished in place) dropped the
        # pattern: present-time reads fail cleanly...
        with pytest.raises(ServiceError, match="no subscription 'p'"):
            service.matches("g", pattern_id="p")
        with pytest.raises(ServiceError, match="version 2"):
            service.matches("g", pattern_id="p", as_of=2)
        # ...but version 1 was retained with its SubscriptionState
        # frozen at publish time: time-travel reads still serve the
        # pattern exactly as it matched then, including top-k.
        assert service.matches("g", pattern_id="p", as_of=1) == frozen
        assert service.top_k("g", 2, pattern_id="p", as_of=1) == frozen_top
        assert "p" in service.snapshot("g", as_of=1).pattern_ids
        assert "p" not in service.snapshot("g").pattern_ids

        # The frozen state survives further settles while retained.
        await service.submit("g", {"inserts": [edge_spec("n2", "n6")]})
        await service.drain()
        assert service.matches("g", pattern_id="p", as_of=1) == frozen
        await service.close()

    run(scenario())


def test_reading_a_version_before_the_pattern_existed_is_a_clean_error():
    async def scenario():
        service = StreamingUpdateService(ServiceConfig(snapshot_history=8, **QUIET))
        await service.register("g", make_data())
        await service.submit("g", {"inserts": [edge_spec("n0", "n4")]})
        await service.drain()  # version 1, no subscriptions yet
        await service.submit("g", {"inserts": [edge_spec("n1", "n5")]})
        await service.drain()  # version 2
        # Subscribing republishes the *latest* version (2) with the new
        # pattern bound; version 1 predates it and must stay pristine.
        await service.subscribe("g", "late", make_pattern())

        assert service.matches("g", pattern_id="late")  # latest: bound
        assert "late" in service.snapshot("g", as_of=2).pattern_ids
        with pytest.raises(ServiceError, match="no subscription 'late' in snapshot version 1"):
            service.matches("g", pattern_id="late", as_of=1)
        with pytest.raises(ServiceError, match="version 1"):
            service.top_k("g", 2, pattern_id="late", as_of=1)
        await service.close()

    run(scenario())


def test_replayed_window_reproduces_subscription_fanout(tmp_path):
    # Record/replay as the equivalence oracle for the multi-pattern
    # fan-out: the journaled session replays — through a fresh service —
    # into exactly the per-subscription matches the live run published,
    # including the effect of the trailing unsubscribe control record.
    from repro.replay import ReplayLog, replay

    async def scenario():
        service = StreamingUpdateService(
            ServiceConfig(journal_dir=str(tmp_path), **QUIET)
        )
        await service.register("g", make_data())
        await service.subscribe("g", "ab", make_pattern("A", "B"), k=2)
        await service.subscribe("g", "bc", make_pattern("B", "C"))
        for payload in (
            {"inserts": [edge_spec("n0", "n4"), edge_spec("n1", "n5")]},
            {"deletes": [edge_spec("n0", "n4")]},
            {"inserts": [edge_spec("n2", "n6")]},
        ):
            receipt = await service.submit("g", payload)
            assert receipt.rejected == 0
            await service.drain()
        await service.unsubscribe("g", "bc")
        live = {
            pid: service.matches("g", pattern_id=pid)
            for pid in service.snapshot("g").pattern_ids
        }
        await service.close()

        window = ReplayLog(tmp_path / "g.journal.jsonl").window(
            base_graph=make_data()
        )
        result = await replay(window)
        replayed = result.final.as_of[0]
        assert sorted(replayed) == sorted(live) == ["ab"]
        for pid, expected in live.items():
            normalized = {
                str(u): sorted(str(v) for v in vs) for u, vs in expected.items()
            }
            assert {u: list(vs) for u, vs in replayed[pid].items()} == normalized

    run(scenario())
