"""Action queue semantics: per-key order, cross-key concurrency, drain."""

import asyncio

import pytest

from repro.service import ActionScheduler, QueueClosedError


def test_same_key_actions_run_in_scheduling_order():
    async def scenario():
        scheduler = ActionScheduler()
        order = []

        def make(i):
            async def action():
                # Yield inside the action: an unserialised queue would
                # interleave the appends.
                await asyncio.sleep(0)
                order.append(i)

            return action

        for i in range(50):
            scheduler.schedule("g", make(i))
        await scheduler.drain()
        await scheduler.close()
        assert order == list(range(50))

    asyncio.run(scenario())


def test_distinct_keys_run_concurrently():
    async def scenario():
        scheduler = ActionScheduler()
        release = asyncio.Event()

        async def blocked():
            await release.wait()
            return "a"

        async def unblocker():
            release.set()
            return "b"

        # If keys shared one queue, "a" (scheduled first) would deadlock
        # waiting for "b" behind it.
        future_a = scheduler.schedule("a", blocked)
        future_b = scheduler.schedule("b", unblocker)
        assert await asyncio.wait_for(future_a, timeout=2) == "a"
        assert await future_b == "b"
        await scheduler.close()

    asyncio.run(scenario())


def test_awaited_action_error_propagates_and_is_recorded():
    async def scenario():
        scheduler = ActionScheduler()

        async def boom():
            raise RuntimeError("kapow")

        with pytest.raises(RuntimeError, match="kapow"):
            await scheduler.schedule("g", boom)
        assert [(key, str(exc)) for key, exc in scheduler.errors] == [("g", "kapow")]
        await scheduler.close()

    asyncio.run(scenario())


def test_fire_and_forget_error_is_recorded_not_lost():
    async def scenario():
        scheduler = ActionScheduler()

        async def boom():
            raise ValueError("dropped future")

        scheduler.schedule("g", boom)  # future intentionally dropped
        await scheduler.drain()
        assert len(scheduler.errors) == 1
        assert isinstance(scheduler.errors[0][1], ValueError)
        await scheduler.close()

    asyncio.run(scenario())


def test_queue_keeps_working_after_an_action_fails():
    async def scenario():
        scheduler = ActionScheduler()

        async def boom():
            raise RuntimeError("first fails")

        async def fine():
            return 42

        scheduler.schedule("g", boom)
        assert await scheduler.schedule("g", fine) == 42
        await scheduler.close()

    asyncio.run(scenario())


def test_drain_waits_for_actions_scheduled_by_actions():
    async def scenario():
        scheduler = ActionScheduler()
        seen = []

        async def second():
            await asyncio.sleep(0.01)
            seen.append("second")

        async def first():
            seen.append("first")
            # A cut scheduling its settle is exactly this shape.
            scheduler.schedule("g", second)

        scheduler.schedule("g", first)
        await scheduler.drain()
        assert seen == ["first", "second"]
        await scheduler.close()

    asyncio.run(scenario())


def test_drain_covers_cascades_across_keys():
    async def scenario():
        scheduler = ActionScheduler()
        seen = []

        async def on_b():
            seen.append("b")

        async def on_a():
            seen.append("a")
            scheduler.schedule("b", on_b)

        scheduler.schedule("a", on_a)
        await scheduler.drain()
        assert seen == ["a", "b"]
        await scheduler.close()

    asyncio.run(scenario())


def test_schedule_after_close_raises():
    async def scenario():
        scheduler = ActionScheduler()

        async def noop():
            return None

        await scheduler.schedule("g", noop)
        await scheduler.close()
        with pytest.raises(QueueClosedError):
            scheduler.schedule("g", noop)

    asyncio.run(scenario())


def test_close_is_idempotent():
    async def scenario():
        scheduler = ActionScheduler()

        async def noop():
            return None

        await scheduler.schedule("g", noop)
        await scheduler.close()
        await scheduler.close()

    asyncio.run(scenario())
