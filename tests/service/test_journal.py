"""GraphJournal: recovery edge cases, compaction, dead letters.

The service-level (replay-through-admission) side of recovery is
covered by ``test_faults.py``; this module exercises the journal file
format directly: empty and checkpoint-only journals, torn final lines,
duplicate-seq idempotence, and the compaction rewrite.
"""

import asyncio
import json

import pytest

from repro.graph import DataGraph, PatternGraph
from repro.graph.updates import (
    delete_data_edge,
    delete_data_node,
    insert_data_edge,
    insert_data_node,
)
from repro.service import ServiceConfig, StreamingUpdateService
from repro.service.journal import (
    DeadLetterJournal,
    GraphJournal,
    JournalError,
    journal_slug,
    update_from_doc,
    update_to_doc,
)


def make_graph(num_nodes: int = 6) -> DataGraph:
    data = DataGraph()
    for i in range(num_nodes):
        data.add_node(f"n{i}", "A" if i % 2 == 0 else "B")
    for i in range(num_nodes):
        data.add_edge(f"n{i}", f"n{(i + 1) % num_nodes}")
    return data


def make_pattern() -> PatternGraph:
    pattern = PatternGraph()
    pattern.add_node("p0", "A")
    pattern.add_node("p1", "B")
    pattern.add_edge("p0", "p1", 2)
    return pattern


QUIET = dict(deadline_seconds=30.0, max_buffer=10_000, coalesce_min_batch=10_000)


def run(coro):
    return asyncio.run(coro)


# ----------------------------------------------------------------------
# Update (de)serialization
# ----------------------------------------------------------------------
def test_update_doc_round_trip_covers_every_op():
    updates = [
        insert_data_edge("a", "b"),
        delete_data_edge("a", "b"),
        insert_data_node("c", ("A", "B"), (("c", "a"), ("b", "c"))),
        delete_data_node("c", ("A",), (("c", "a"),)),
    ]
    for update in updates:
        assert update_from_doc(update_to_doc(update)) == update


def test_update_doc_round_trip_refreezes_tuple_ids():
    update = insert_data_edge(("u", 1), ("v", 2))
    doc = json.loads(json.dumps(update_to_doc(update)))  # tuples -> lists
    assert update_from_doc(doc) == update


def test_update_from_doc_rejects_malformed_records():
    with pytest.raises(JournalError):
        update_from_doc({"op": "teleport", "node": "x"})
    with pytest.raises(JournalError):
        update_from_doc({"op": "insert_edge", "source": "a"})  # no target


def test_journal_slug_is_filesystem_safe_and_collision_free():
    assert journal_slug("email-EU-core") == "email-EU-core"
    slashy = journal_slug("a/b")
    dotty = journal_slug("a.b")
    assert "/" not in slashy
    # Sanitisation alone would collide ("a/b" vs "a_b"); the hash suffix
    # keeps them distinct.
    assert slashy != journal_slug("a_b")
    assert slashy != dotty


# ----------------------------------------------------------------------
# Recovery edge cases
# ----------------------------------------------------------------------
def test_missing_journal_recovers_to_a_fresh_state(tmp_path):
    journal = GraphJournal(tmp_path / "g.journal.jsonl")
    state = journal.open()
    assert state.base_graph is None
    assert state.tail == []
    assert state.last_seq == 0
    assert not state.torn_line
    assert journal.append_delta([insert_data_edge("a", "b")]) == 1
    journal.close()


def test_empty_journal_file_recovers_to_a_fresh_state(tmp_path):
    path = tmp_path / "g.journal.jsonl"
    path.write_text("")
    journal = GraphJournal(path)
    state = journal.open()
    assert state.tail == [] and state.last_seq == 0 and not state.torn_line
    journal.close()


def test_checkpoint_only_journal_recovers_with_empty_tail(tmp_path):
    path = tmp_path / "g.journal.jsonl"
    journal = GraphJournal(path)
    journal.open()
    journal.append_delta([insert_data_edge("a", "b")])
    journal.checkpoint(1, version=1, batch_id=1)
    journal.close()
    # Strip the delta record, keeping only its checkpoint — the shape a
    # compaction interrupted between rewrite and first append leaves.
    lines = [l for l in path.read_text().splitlines() if json.loads(l)["t"] == "checkpoint"]
    path.write_text("\n".join(lines) + "\n")
    reopened = GraphJournal(path)
    state = reopened.open()
    assert state.tail == []
    assert state.checkpoint_seq == 1
    assert state.base_graph is None
    # Appends resume after the checkpointed seq.
    assert reopened.append_delta([insert_data_edge("c", "d")]) == 2
    reopened.close()


def test_torn_final_line_is_truncated_and_counted(tmp_path):
    path = tmp_path / "g.journal.jsonl"
    journal = GraphJournal(path)
    journal.open()
    journal.append_delta([insert_data_edge("a", "b")])
    journal.append_delta([insert_data_edge("c", "d")])
    journal.close()
    intact = path.read_bytes()
    path.write_bytes(intact + b'{"t": "delta", "seq": 3, "upd')  # torn mid-record
    reopened = GraphJournal(path)
    state = reopened.open()
    assert state.torn_line
    assert reopened.torn_lines == 1
    assert [seq for seq, _ in state.tail] == [1, 2]
    # The torn bytes are gone: the file is valid JSON lines again.
    reopened.close()
    for line in path.read_text().splitlines():
        json.loads(line)


def test_torn_terminated_final_line_is_also_tolerated(tmp_path):
    # A torn write can also leave a *complete* line of garbage (half a
    # record, newline flushed): still the final line, still truncated.
    path = tmp_path / "g.journal.jsonl"
    journal = GraphJournal(path)
    journal.open()
    journal.append_delta([insert_data_edge("a", "b")])
    journal.close()
    path.write_bytes(path.read_bytes() + b'{"t": "delta", "broken\n')
    reopened = GraphJournal(path)
    state = reopened.open()
    assert state.torn_line
    assert [seq for seq, _ in state.tail] == [1]
    reopened.close()


def test_interior_corruption_raises(tmp_path):
    path = tmp_path / "g.journal.jsonl"
    journal = GraphJournal(path)
    journal.open()
    journal.append_delta([insert_data_edge("a", "b")])
    journal.append_delta([insert_data_edge("c", "d")])
    journal.close()
    lines = path.read_text().splitlines()
    lines[0] = lines[0][: len(lines[0]) // 2]  # corrupt a *non-final* record
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(JournalError, match="corrupt journal record"):
        GraphJournal(path).open()


def test_duplicate_seq_records_are_dropped_once(tmp_path):
    path = tmp_path / "g.journal.jsonl"
    journal = GraphJournal(path)
    journal.open()
    journal.append_delta([insert_data_edge("a", "b")])
    journal.close()
    line = path.read_text().splitlines()[0]
    path.write_text(line + "\n" + line + "\n")  # the same seq twice
    state = GraphJournal(path).open()
    assert [seq for seq, _ in state.tail] == [1]
    assert state.dropped_duplicates == 1


def test_checkpointed_deltas_stay_in_the_replay_tail(tmp_path):
    # A checkpoint proves its deltas settled — but the settled graph
    # died with the process, so recovery must still replay them against
    # the base.  Only a *snapshot* removes deltas from the tail.
    path = tmp_path / "g.journal.jsonl"
    journal = GraphJournal(path)
    journal.open()
    journal.append_delta([insert_data_edge("a", "b")])
    journal.checkpoint(1, version=1, batch_id=1)
    journal.append_delta([insert_data_edge("c", "d")])
    journal.close()
    state = GraphJournal(path).open()
    assert [seq for seq, _ in state.tail] == [1, 2]
    assert state.checkpoint_seq == 1


def test_torn_tail_fuzz_every_byte_offset(tmp_path):
    # Byte-granular crash fuzz: truncate a valid journal at *every*
    # byte offset (not just line granularity) and recover.  The
    # contract: recovery yields exactly the fully-terminated records of
    # the surviving prefix — a partial final line is truncated away and
    # flagged torn, interior records are never silently dropped, and no
    # offset may raise anything but JournalError.  The offsets inside
    # the final record are the satellite case; sweeping from zero also
    # covers torn tails that swallow whole records.
    path = tmp_path / "g.journal.jsonl"
    journal = GraphJournal(path)
    journal.open()
    journal.append_delta([insert_data_edge("n0", "n2")])
    journal.append_delta([insert_data_node("x", ("A",), (("x", "n0"),))])
    journal.append_delta([delete_data_edge("n0", "n2")])
    journal.close()
    intact = path.read_bytes()
    lines = intact.splitlines(keepends=True)
    # Byte offset right after each terminated record (0 = empty file).
    boundaries = [0]
    for line in lines:
        boundaries.append(boundaries[-1] + len(line))
    assert boundaries[-1] == len(intact)
    for cut in range(len(intact) + 1):
        path.write_bytes(intact[:cut])
        reopened = GraphJournal(path)
        try:
            state = reopened.open()
        except JournalError:
            # Tolerated by the contract, but pure truncation must never
            # trigger it (a prefix has no *interior* corruption).
            pytest.fail(f"truncation at byte {cut} raised JournalError")
        finally:
            reopened.close()
        complete = sum(1 for boundary in boundaries[1:] if boundary <= cut)
        assert [seq for seq, _ in state.tail] == list(range(1, complete + 1)), (
            f"cut at byte {cut}: expected records 1..{complete}"
        )
        assert state.torn_line == (cut not in boundaries), (
            f"cut at byte {cut}: torn_line misreported"
        )
        # The truncation repair leaves a cleanly appendable file.
        assert path.stat().st_size == boundaries[complete]


def test_unterminated_but_valid_final_record_is_dropped_as_torn(tmp_path):
    # The subtle fuzz offset: the final record's bytes are all present
    # *except* the trailing newline, so it parses as valid JSON.  The
    # fsync that included the newline never completed, so no receipt
    # was issued for it — recovery must drop it (and truncate), or the
    # append handle would glue the next record onto the unterminated
    # line and corrupt the journal for the *next* recovery.
    path = tmp_path / "g.journal.jsonl"
    journal = GraphJournal(path)
    journal.open()
    journal.append_delta([insert_data_edge("a", "b")])
    journal.append_delta([insert_data_edge("c", "d")])
    journal.close()
    intact = path.read_bytes()
    path.write_bytes(intact[:-1])  # strip only the final newline
    reopened = GraphJournal(path)
    state = reopened.open()
    assert [seq for seq, _ in state.tail] == [1]
    assert state.torn_line
    # The repaired file plus a fresh append must recover both records.
    assert reopened.append_delta([insert_data_edge("e", "f")]) == 2
    reopened.close()
    final = GraphJournal(path).open()
    assert [seq for seq, _ in final.tail] == [1, 2]


# ----------------------------------------------------------------------
# Journal initialization (live capture)
# ----------------------------------------------------------------------
def test_initialize_writes_a_replayable_snapshot_base(tmp_path):
    path = tmp_path / "g.journal.jsonl"
    journal = GraphJournal(path)
    graph = make_graph()
    journal.initialize(
        graph,
        seq=7,
        version=3,
        stamps={"latest": 3, "nodes": [], "edges": []},
        subscriptions=[{"pattern_id": "p", "pattern": {"kind": "pattern_graph", "nodes": [], "edges": []}}],
    )
    # Appends continue after the base seq, checkpoints cover them.
    assert journal.append_delta([insert_data_edge("n0", "n2")]) == 8
    journal.checkpoint(8, version=4, batch_id=1)
    journal.close()
    state = GraphJournal(path).open()
    assert state.base_graph == graph
    assert state.base_seq == 7
    assert state.checkpoint_version == 4
    assert [seq for seq, _ in state.tail] == [8]
    assert state.subscriptions and "p" in state.subscriptions


def test_initialize_refuses_an_already_open_journal(tmp_path):
    journal = GraphJournal(tmp_path / "g.journal.jsonl")
    journal.open()
    with pytest.raises(JournalError):
        journal.initialize(make_graph())
    journal.close()


# ----------------------------------------------------------------------
# Compaction
# ----------------------------------------------------------------------
def test_compaction_rewrites_to_snapshot_plus_uncheckpointed_tail(tmp_path):
    path = tmp_path / "g.journal.jsonl"
    journal = GraphJournal(path, compact_bytes=1)  # always oversized
    journal.open()
    graph = make_graph()
    journal.append_delta([insert_data_edge("n0", "n2")])
    journal.append_delta([insert_data_edge("n0", "n3")])
    settled = graph.copy()
    settled.add_edge("n0", "n2")
    settled.add_edge("n0", "n3")
    journal.checkpoint(2, version=1, batch_id=1)
    journal.append_delta([insert_data_edge("n1", "n4")])  # uncheckpointed
    assert journal.should_compact()
    journal.compact(settled, version=1)
    journal.close()

    records = [json.loads(l) for l in path.read_text().splitlines()]
    assert [r["t"] for r in records] == ["snapshot", "delta"]
    assert records[0]["seq"] == 2 and records[1]["seq"] == 3

    state = GraphJournal(path).open()
    assert state.base_graph == settled
    assert state.base_seq == 2
    assert [seq for seq, _ in state.tail] == [3]


def test_appends_continue_after_compaction(tmp_path):
    path = tmp_path / "g.journal.jsonl"
    journal = GraphJournal(path, compact_bytes=1)
    journal.open()
    journal.append_delta([insert_data_edge("a", "b")])
    journal.checkpoint(1, version=1, batch_id=1)
    journal.compact(make_graph(), version=1)
    assert journal.append_delta([insert_data_edge("c", "d")]) == 2
    journal.checkpoint(2, version=2, batch_id=2)
    journal.close()
    state = GraphJournal(path).open()
    assert state.last_seq == 2
    assert [seq for seq, _ in state.tail] == [2]


def test_should_compact_requires_checkpoint_progress(tmp_path):
    journal = GraphJournal(tmp_path / "g.journal.jsonl", compact_bytes=1)
    journal.open()
    journal.append_delta([insert_data_edge("a", "b")])
    # Oversized but nothing checkpointed past the base: compacting now
    # would snapshot a state that does not cover the tail.
    assert not journal.should_compact()
    journal.checkpoint(1, version=1, batch_id=1)
    assert journal.should_compact()
    journal.close()


# ----------------------------------------------------------------------
# Dead letters
# ----------------------------------------------------------------------
def test_dead_letter_journal_round_trip(tmp_path):
    dead = DeadLetterJournal(tmp_path / "g.deadletter.jsonl")
    assert dead.load() == [] and len(dead) == 0
    dead.append(insert_data_edge("a", "b"), "kernel exploded")
    dead.append(delete_data_edge("c", "d"), "cascade", kind="cascade")
    records = dead.load()
    assert len(dead) == 2
    assert records[0]["kind"] == "poison"
    assert records[0]["update"]["op"] == "insert_edge"
    assert records[0]["error"] == "kernel exploded"
    assert records[1]["kind"] == "cascade"


# ----------------------------------------------------------------------
# Service-level replay idempotence
# ----------------------------------------------------------------------
def test_replay_is_idempotent_across_repeated_recoveries(tmp_path):
    # Boot -> accept -> crash (no checkpoint) -> recover -> recover
    # again: the delta must be applied exactly once each boot, never
    # doubled, and survive an arbitrary number of recovery cycles.
    async def scenario():
        config = ServiceConfig(journal_dir=str(tmp_path), **QUIET)
        service = StreamingUpdateService(config)
        await service.register_graph("g", make_pattern(), make_graph())
        receipt = await service.submit(
            "g", {"inserts": [{"type": "edge", "source": "n0", "target": "n3"}]}
        )
        assert receipt.accepted == 1
        # Abandon without settling: the journal holds an uncheckpointed
        # delta, exactly what a crash after the receipt leaves.
        await service.abort()

        for boot in range(3):
            revived = StreamingUpdateService(config)
            await revived.register_graph("g", make_pattern(), make_graph())
            await revived.drain()
            stats = revived.stats("g")
            snapshot = revived.snapshot("g")
            assert snapshot.data.has_edge("n0", "n3")
            # Exactly one application per boot: replayed once, never
            # double-applied (the ring edge count proves no duplicates).
            assert stats["recovered"] + stats["recovery_skipped"] >= 1
            assert snapshot.data.number_of_edges == make_graph().number_of_edges + 1
            if boot < 2:
                await revived.abort()
            else:
                await revived.close()

    run(scenario())


def test_recovery_skips_deltas_already_present_in_the_base(tmp_path):
    # A journaled delta whose effect is already in the recovered base
    # (settled into a snapshot, checkpoint lost) must be skipped by
    # validation, not double-applied.
    async def scenario():
        config = ServiceConfig(journal_dir=str(tmp_path), **QUIET)
        service = StreamingUpdateService(config)
        await service.register_graph("g", make_pattern(), make_graph())
        await service.submit(
            "g", {"inserts": [{"type": "edge", "source": "n0", "target": "n3"}]}
        )
        await service.abort()

        # Register with a base that already contains the edge — the
        # stand-in for "it settled into a snapshot before the crash".
        base = make_graph()
        base.add_edge("n0", "n3")
        revived = StreamingUpdateService(config)
        await revived.register_graph("g", make_pattern(), base)
        await revived.drain()
        stats = revived.stats("g")
        assert stats["recovery_skipped"] == 1
        assert stats["recovered"] == 0
        snapshot = revived.snapshot("g")
        assert snapshot.data.number_of_edges == base.number_of_edges
        await revived.close()

    run(scenario())
