"""Fault injection: kill-and-recover differentials, retries, quarantine.

The central claim of the durability layer — *no accepted delta is ever
lost, and none is applied twice* — is proven here differentially: a
service is crashed (deterministically, at every named crash point) and
recovered from its journal, and the recovered graph, SLen and match
state must equal an uninterrupted oracle run over exactly the payloads
the crashed run accepted (plus any journaled-but-unreceipted payload:
durability is decided at the fsync, not at the receipt).
"""

import asyncio
import threading

import pytest

from repro.graph import DataGraph, PatternGraph
from repro.graph.updates import EdgeInsertion
from repro.service import (
    CRASH_POINTS,
    POST_APPEND,
    PRE_SETTLE,
    FaultInjector,
    InjectedCrash,
    KernelFault,
    ServiceConfig,
    StreamingUpdateService,
    flaky_algorithm_factory,
)
from repro.service.journal import DeadLetterJournal, journal_slug
from repro.service.service import default_algorithm_factory


def make_data(num_nodes: int = 8) -> DataGraph:
    data = DataGraph()
    for i in range(num_nodes):
        data.add_node(f"n{i}", "A" if i % 2 == 0 else "B")
    for i in range(num_nodes):
        data.add_edge(f"n{i}", f"n{(i + 1) % num_nodes}")
    return data


def make_pattern() -> PatternGraph:
    pattern = PatternGraph()
    pattern.add_node("p0", "A")
    pattern.add_node("p1", "B")
    pattern.add_edge("p0", "p1", 2)
    return pattern


def edge_spec(source: str, target: str) -> dict:
    return {"type": "edge", "source": source, "target": target}


#: The differential workload: a mix of inserts and deletes, one payload
#: per line, applied in order.  With ``deadline_seconds=0`` every
#: payload cuts (and settles) individually, so every crash point is
#: exercised between payloads.
WORKLOAD = [
    {"inserts": [edge_spec("n0", "n2")]},
    {"inserts": [edge_spec("n0", "n3"), edge_spec("n1", "n4")]},
    {"deletes": [edge_spec("n0", "n2")]},
    {"inserts": [edge_spec("n2", "n5")]},
    {"deletes": [edge_spec("n1", "n4")]},
    {"inserts": [edge_spec("n3", "n6")]},
]

QUIET = dict(deadline_seconds=30.0, max_buffer=10_000, coalesce_min_batch=10_000)
#: Every payload cuts and settles on its own.
EAGER = dict(deadline_seconds=0.0, max_buffer=10_000, coalesce_min_batch=10_000)


def run(coro):
    return asyncio.run(coro)


async def oracle_state(payloads):
    """The uninterrupted run: apply ``payloads`` with no journal/faults."""
    service = StreamingUpdateService(ServiceConfig(**QUIET))
    await service.register_graph("g", make_pattern(), make_data())
    for payload in payloads:
        receipt = await service.submit("g", payload)
        assert receipt.rejected == 0
    await service.drain()
    snapshot = service.snapshot("g")
    state = (snapshot.data, snapshot.slen, snapshot.result.as_dict())
    await service.close()
    return state


# ----------------------------------------------------------------------
# The FaultInjector itself
# ----------------------------------------------------------------------
def test_injector_counts_hits_and_fires_on_schedule():
    faults = FaultInjector()
    faults.arm(PRE_SETTLE, after=2)
    faults.hit(PRE_SETTLE)
    faults.hit(PRE_SETTLE)
    with pytest.raises(InjectedCrash) as excinfo:
        faults.hit(PRE_SETTLE)
    assert excinfo.value.point == PRE_SETTLE
    faults.hit(PRE_SETTLE)  # disarmed after firing
    assert faults.hits[PRE_SETTLE] == 4


def test_injector_rejects_unknown_points():
    with pytest.raises(ValueError):
        FaultInjector().arm("post-apocalypse")


def test_injected_crash_is_not_an_exception():
    # The whole design rests on this: Exception-catching retry logic
    # must never absorb a simulated process death.
    assert not issubclass(InjectedCrash, Exception)
    assert issubclass(InjectedCrash, BaseException)


# ----------------------------------------------------------------------
# Kill-and-recover differential, every named crash point
# ----------------------------------------------------------------------
async def crash_run(journal_dir, arm, payloads=WORKLOAD):
    """Run ``payloads`` against a journaled service until the armed
    fault fires, abandon the instance, and return the payloads that
    must survive recovery (receipted ones, plus a
    journaled-but-unreceipted one for post-append crashes)."""
    faults = FaultInjector()
    arm(faults)
    service = StreamingUpdateService(
        ServiceConfig(journal_dir=str(journal_dir), **EAGER), faults=faults
    )
    await service.register_graph("g", make_pattern(), make_data())
    durable = []
    crashed = False
    for payload in payloads:
        try:
            receipt = await service.submit("g", payload)
        except InjectedCrash as crash:
            # No receipt was issued.  The payload is durable anyway iff
            # the crash hit after the fsync.
            if crash.point == POST_APPEND:
                durable.append(payload)
            crashed = True
            break
        assert receipt.rejected == 0
        durable.append(payload)
        await service.quiesce()
        if any(isinstance(exc, InjectedCrash) for _, exc in service.errors):
            crashed = True
            break
    assert crashed, "the armed fault never fired"
    await service.abort()
    return durable


async def recover_and_snapshot(journal_dir):
    service = StreamingUpdateService(
        ServiceConfig(journal_dir=str(journal_dir), **QUIET)
    )
    await service.register_graph("g", make_pattern(), make_data())
    await service.drain()
    snapshot = service.snapshot("g")
    stats = service.stats("g")
    state = (snapshot.data, snapshot.slen, snapshot.result.as_dict())
    await service.close()
    return state, stats


@pytest.mark.parametrize("point", CRASH_POINTS)
def test_kill_and_recover_equals_uninterrupted_oracle(tmp_path, point):
    async def scenario():
        durable = await crash_run(tmp_path, lambda f: f.arm(point, after=1))
        recovered, stats = await recover_and_snapshot(tmp_path)
        expected = await oracle_state(durable)
        # Zero accepted-delta loss, no double application: the recovered
        # graph, SLen and match state are *equal* to the oracle's.
        assert recovered[0] == expected[0]
        assert recovered[1] == expected[1]
        assert recovered[2] == expected[2]
        assert stats["quarantined"] == 0

    run(scenario())


def test_torn_append_is_truncated_and_only_unreceipted_data_lost(tmp_path):
    async def scenario():
        durable = await crash_run(tmp_path, lambda f: f.arm_torn_append(after=1))
        recovered, stats = await recover_and_snapshot(tmp_path)
        expected = await oracle_state(durable)
        assert recovered[0] == expected[0]
        assert recovered[1] == expected[1]
        assert recovered[2] == expected[2]
        assert stats["journal"]["torn_lines"] == 1

    run(scenario())


def test_recovered_service_keeps_accepting_and_checkpointing(tmp_path):
    # Recovery is not read-only: the revived service must accept new
    # deltas, checkpoint them, and a third boot must see everything.
    async def scenario():
        await crash_run(tmp_path, lambda f: f.arm(PRE_SETTLE, after=0))
        config = ServiceConfig(journal_dir=str(tmp_path), **QUIET)
        revived = StreamingUpdateService(config)
        await revived.register_graph("g", make_pattern(), make_data())
        await revived.drain()
        receipt = await revived.submit("g", {"inserts": [edge_spec("n4", "n6")]})
        assert receipt.accepted == 1
        await revived.close()

        third = StreamingUpdateService(config)
        await third.register_graph("g", make_pattern(), make_data())
        await third.drain()
        assert third.snapshot("g").data.has_edge("n4", "n6")
        await third.close()

    run(scenario())


# ----------------------------------------------------------------------
# Kernel failures: transient retry, poison quarantine, cascade
# ----------------------------------------------------------------------
def test_transient_settle_failure_is_retried_to_success(tmp_path):
    async def scenario():
        factory = flaky_algorithm_factory(default_algorithm_factory, fail_times=2)
        service = StreamingUpdateService(
            ServiceConfig(
                journal_dir=str(tmp_path),
                settle_retries=2,
                settle_backoff_seconds=0.001,
                **QUIET,
            ),
            algorithm_factory=factory,
        )
        await service.register_graph("g", make_pattern(), make_data())
        await service.submit("g", {"inserts": [edge_spec("n0", "n2")]})
        await service.drain()
        stats = service.stats("g")
        assert stats["settle_failures"] == 2
        assert stats["settle_retries"] == 2
        assert stats["rebuilds"] == 2
        assert stats["quarantined"] == 0
        assert stats["settled"] == 1
        assert service.snapshot("g").data.has_edge("n0", "n2")
        assert service.errors == []
        await service.close()

    run(scenario())


def test_poison_delta_is_quarantined_and_the_graph_lives_on(tmp_path):
    async def scenario():
        def is_poison(update):
            return (
                isinstance(update, EdgeInsertion)
                and update.source == "n0"
                and update.target == "n2"
            )

        factory = flaky_algorithm_factory(
            default_algorithm_factory, poison=is_poison, message="poison kernel bug"
        )
        service = StreamingUpdateService(
            ServiceConfig(
                journal_dir=str(tmp_path),
                settle_retries=1,
                settle_backoff_seconds=0.001,
                **QUIET,
            ),
            algorithm_factory=factory,
        )
        await service.register_graph("g", make_pattern(), make_data())
        # One batch: the poison delta plus two innocents.
        await service.submit(
            "g",
            {
                "inserts": [
                    edge_spec("n0", "n2"),  # poison
                    edge_spec("n0", "n3"),
                    edge_spec("n1", "n4"),
                ]
            },
        )
        await service.drain()
        stats = service.stats("g")
        assert stats["quarantined"] == 1
        assert stats["settle_retries"] == 1
        snapshot = service.snapshot("g")
        # The innocents settled, the poison did not.
        assert not snapshot.data.has_edge("n0", "n2")
        assert snapshot.data.has_edge("n0", "n3")
        assert snapshot.data.has_edge("n1", "n4")
        # ...and it is durably dead-lettered with the kernel's error.
        dead = DeadLetterJournal(
            tmp_path / f"{journal_slug('g')}.deadletter.jsonl"
        ).load()
        assert len(dead) == 1
        assert dead[0]["kind"] == "poison"
        assert dead[0]["update"] == {
            "op": "insert_edge",
            "source": "n0",
            "target": "n2",
        }
        assert "poison kernel bug" in dead[0]["error"]

        # Subsequent deltas on the same graph still settle and reads
        # still answer.
        receipt = await service.submit("g", {"inserts": [edge_spec("n2", "n5")]})
        assert receipt.accepted == 1
        await service.drain()
        assert service.snapshot("g").data.has_edge("n2", "n5")
        assert service.matches("g") is not None
        await service.close()

    run(scenario())


def test_quarantine_cascades_to_buffered_dependents(tmp_path):
    # A delta buffered *behind* a poison batch can depend on it (here: a
    # delete of the edge the poison insert never materialised).  When
    # the poison is quarantined, the dependent must be dead-lettered as
    # a cascade, not silently dropped.
    #
    # Queue choreography: both ingests are scheduled in the same tick,
    # so the order on the graph's queue is [ingest1, ingest2, settle1].
    # Payload 1 (two inserts) hits the max_buffer=2 capacity cut at
    # ingest1; payload 2 (the dependent delete) is then validated
    # against the staged state — which still contains the poison edge —
    # and is sitting in the buffer when settle1 fails.
    async def scenario():
        def is_poison(update):
            return (
                isinstance(update, EdgeInsertion)
                and update.source == "n0"
                and update.target == "n2"
            )

        factory = flaky_algorithm_factory(
            default_algorithm_factory, poison=is_poison, message="poison kernel bug"
        )
        service = StreamingUpdateService(
            ServiceConfig(
                journal_dir=str(tmp_path),
                settle_retries=0,
                deadline_seconds=30.0,
                max_buffer=2,
                coalesce_min_batch=10_000,
            ),
            algorithm_factory=factory,
        )
        await service.register_graph("g", make_pattern(), make_data())
        first = service.submit_nowait(
            "g", {"inserts": [edge_spec("n0", "n2"), edge_spec("n1", "n4")]}
        )
        second = service.submit_nowait("g", {"deletes": [edge_spec("n0", "n2")]})
        receipt1 = await first
        receipt2 = await second
        assert receipt1.accepted == 2 and receipt1.cut == "capacity"
        assert receipt2.accepted == 1  # valid against the staged state
        await service.drain()

        stats = service.stats("g")
        assert stats["quarantined"] == 2  # the poison + its dependent
        dead = DeadLetterJournal(
            tmp_path / f"{journal_slug('g')}.deadletter.jsonl"
        ).load()
        kinds = sorted(record["kind"] for record in dead)
        assert kinds == ["cascade", "poison"]
        snapshot = service.snapshot("g")
        # The innocent half of the poison batch settled; the poison and
        # its dependent did not.
        assert not snapshot.data.has_edge("n0", "n2")
        expected = make_data()
        expected.add_edge("n1", "n4")
        assert snapshot.data == expected
        await service.close()

    run(scenario())


# ----------------------------------------------------------------------
# Scheduler errors surface through stats (and the log)
# ----------------------------------------------------------------------
def test_queue_errors_surface_in_stats_and_log(tmp_path, caplog):
    async def scenario():
        faults = FaultInjector()
        faults.arm(PRE_SETTLE)
        service = StreamingUpdateService(
            ServiceConfig(journal_dir=str(tmp_path), **EAGER), faults=faults
        )
        await service.register_graph("g", make_pattern(), make_data())
        await service.submit("g", {"inserts": [edge_spec("n0", "n2")]})
        await service.quiesce()
        assert len(service.errors) == 1
        key, exc = service.errors[0]
        assert key == "g" and isinstance(exc, InjectedCrash)
        assert service.stats("g")["queue_errors"] == 1
        assert any(
            "action on queue 'g' failed" in record.message
            for record in caplog.records
        )
        await service.abort()

    import logging

    with caplog.at_level(logging.ERROR, logger="repro.service"):
        run(scenario())


# ----------------------------------------------------------------------
# Seeded random workloads, settle provenance, replay as the oracle
# ----------------------------------------------------------------------
#: Root seed of the randomized crash differentials below.  Per-case
#: seeds derive from it via :func:`derive_seed` — the same cross-process
#: stable contract tests/versioning/test_isolation.py pins — so a
#: failing crash point reproduces its exact workload in any process.
ROOT_SEED = 20260807


@pytest.mark.parametrize("point", CRASH_POINTS)
def test_kill_and_recover_differential_under_seeded_workloads(tmp_path, point):
    from repro.workloads.update_gen import derive_seed, generate_payload_stream

    async def scenario():
        payloads = list(
            generate_payload_stream(
                make_data(),
                payloads=8,
                updates_per_payload=3,
                seed=derive_seed(ROOT_SEED, "faults", point),
            )
        )
        durable = await crash_run(
            tmp_path, lambda f: f.arm(point, after=2), payloads=payloads
        )
        recovered, _stats = await recover_and_snapshot(tmp_path)
        expected = await oracle_state(durable)
        assert recovered[0] == expected[0]
        assert recovered[1] == expected[1]
        assert recovered[2] == expected[2]

    run(scenario())


def test_seeded_workload_derivation_is_pinned():
    from repro.workloads.update_gen import derive_seed

    # The per-point seed must never silently change between processes
    # or releases: recorded crash reproductions depend on it.
    assert derive_seed(ROOT_SEED, "faults", PRE_SETTLE) == 12497881693818095501


def test_recovery_splits_settle_provenance(tmp_path):
    # stats() tells recovered (journal-replayed) settles apart from
    # live ones — the operator's signal for "how much of this boot was
    # catch-up".
    async def scenario():
        await crash_run(tmp_path, lambda f: f.arm(PRE_SETTLE, after=1))
        service = StreamingUpdateService(
            ServiceConfig(journal_dir=str(tmp_path), **QUIET)
        )
        await service.register_graph("g", make_pattern(), make_data())
        await service.drain()
        stats = service.stats("g")
        # The journaled-but-unsettled tail settled as *recovered*.
        assert stats["recovered"] >= 1
        assert stats["recovered_settles"] >= 1
        assert stats["live_settles"] == 0
        assert stats["settles"] == stats["recovered_settles"]

        # Fresh traffic settles as *live*; the split stays exhaustive.
        receipt = await service.submit("g", {"inserts": [edge_spec("n4", "n6")]})
        assert receipt.accepted == 1
        await service.drain()
        stats = service.stats("g")
        assert stats["live_settles"] == 1
        assert stats["settles"] == stats["recovered_settles"] + stats["live_settles"]
        await service.close()

    run(scenario())


def test_replayed_window_is_an_oracle_for_recovery(tmp_path):
    # The journal a crashed run leaves behind replays — through a fresh
    # un-journaled service — into exactly the state recovery serves,
    # including the journaled-but-unreceipted tail payload.  Replay is
    # the recovery oracle: no scripted second live run required.
    from repro.replay import ReplayLog, replay

    async def scenario():
        await crash_run(tmp_path, lambda f: f.arm(POST_APPEND, after=1))
        recovered, _stats = await recover_and_snapshot(tmp_path)

        window = ReplayLog(
            tmp_path / f"{journal_slug('g')}.journal.jsonl"
        ).window(base_graph=make_data())
        result = await replay(window)
        assert list(result.final.nodes) == sorted(
            str(node) for node in recovered[0].nodes()
        )
        assert [tuple(edge) for edge in result.final.edges] == sorted(
            (str(s), str(t)) for s, t in recovered[0].edges()
        )
        expected_matches = {
            str(u): sorted(str(v) for v in vs) for u, vs in recovered[2].items()
        }
        replayed = {
            u: list(vs) for u, vs in result.final.as_of[0]["default"].items()
        }
        assert replayed == expected_matches

    run(scenario())
