"""Elimination detection (Examples 7-9) and the EH-Tree (Example 10 / Fig. 3)."""

import pytest

from repro import paper_example
from repro.elimination.detector import (
    EliminationAnalysis,
    detect_all,
    detect_type_i,
    detect_type_ii,
    detect_type_iii,
)
from repro.elimination.eh_tree import EHTree
from repro.elimination.relations import EliminationRelation, EliminationType
from repro.graph.updates import insert_data_edge, insert_pattern_edge
from repro.matching.affected import affected_set_from_delta
from repro.matching.candidates import candidate_set
from repro.matching.gpnm import gpnm_query
from repro.spl.incremental import update_slen


@pytest.fixture
def example_state(figure1_data, figure1_pattern, figure1_slen):
    """Candidate sets, affected sets and SLen_new of Example 2's four updates."""
    iquery = gpnm_query(figure1_pattern, figure1_data, figure1_slen, enforce_totality=False)
    names = paper_example.example2_update_names()
    candidates = [
        candidate_set(names["UP1"], figure1_pattern, figure1_data, figure1_slen, iquery),
        candidate_set(names["UP2"], figure1_pattern, figure1_data, figure1_slen, iquery),
    ]
    slen_new = figure1_slen.copy()
    data_new = figure1_data.copy()
    affected = []
    for key in ("UD1", "UD2"):
        names[key].apply(data_new)
        delta = update_slen(slen_new, data_new, names[key])
        affected.append(affected_set_from_delta(names[key], delta))
    return names, candidates, affected, slen_new


class TestDetectors:
    def test_type_i(self, example_state):
        names, candidates, _affected, _slen = example_state
        relations = detect_type_i(candidates)
        assert (
            EliminationRelation(names["UP1"], names["UP2"], EliminationType.SINGLE_PATTERN)
            in relations
        )
        assert all(rel.eliminated != names["UP1"] for rel in relations)

    def test_type_ii(self, example_state):
        names, _candidates, affected, _slen = example_state
        relations = detect_type_ii(affected)
        assert (
            EliminationRelation(names["UD1"], names["UD2"], EliminationType.SINGLE_DATA)
            in relations
        )

    def test_type_iii_example9(self, example_state):
        names, candidates, affected, slen_new = example_state
        relations = detect_type_iii(candidates, affected, slen_new)
        pairs = {(rel.eliminator, rel.eliminated) for rel in relations}
        assert (names["UD1"], names["UP1"]) in pairs
        # UD2's affected nodes do not cover Can_N(UP1), so no relation there.
        assert (names["UD2"], names["UP1"]) not in pairs

    def test_detect_all_bundle(self, example_state):
        names, candidates, affected, slen_new = example_state
        analysis = detect_all(candidates, affected, slen_new)
        assert analysis.number_of_eliminated >= 2
        assert names["UP2"] in analysis.eliminated_updates()
        assert names["UD1"] in analysis.eliminators_of(names["UP1"])
        assert len(analysis.relations_of_type(EliminationType.SINGLE_DATA)) >= 1

    def test_type_i_requires_same_direction(self, figure1_data, figure1_pattern, figure1_slen):
        iquery = gpnm_query(figure1_pattern, figure1_data, figure1_slen, enforce_totality=False)
        from repro.graph.updates import delete_pattern_edge

        insertion = candidate_set(
            insert_pattern_edge("PM", "TE", 2), figure1_pattern, figure1_data, figure1_slen, iquery
        )
        deletion = candidate_set(
            delete_pattern_edge("PM", "S", 3), figure1_pattern, figure1_data, figure1_slen, iquery
        )
        relations = detect_type_i([insertion, deletion])
        assert all(
            relation.eliminator.is_insertion == relation.eliminated.is_insertion
            for relation in relations
        )

    def test_relation_helpers(self, example_state):
        names, *_rest = example_state
        relation = EliminationRelation(names["UD1"], names["UD2"], EliminationType.SINGLE_DATA)
        assert relation.involves(names["UD1"])
        assert not relation.involves(names["UP1"])
        assert "⊵" in str(relation)


class TestEHTree:
    def test_example10_structure(self, example_state):
        names, candidates, affected, slen_new = example_state
        analysis = detect_all(candidates, affected, slen_new)
        updates = [names["UD1"], names["UD2"], names["UP1"], names["UP2"]]
        tree = EHTree.build(analysis, updates)
        # Figure 3: UD1 is the root; UD2 and UP1 are its children; UP2 hangs under UP1.
        assert tree.root_updates() == [names["UD1"]]
        assert tree.parent_of(names["UD2"]) == names["UD1"]
        assert tree.parent_of(names["UP1"]) == names["UD1"]
        assert tree.parent_of(names["UP2"]) == names["UP1"]
        assert set(tree.children_of(names["UD1"])) == {names["UD2"], names["UP1"]}
        assert tree.depth_of(names["UP2"]) == 2
        assert tree.number_of_eliminated == 3
        assert set(tree.eliminated_updates()) == {names["UD2"], names["UP1"], names["UP2"]}

    def test_traversal_and_ascii(self, example_state):
        names, candidates, affected, slen_new = example_state
        analysis = detect_all(candidates, affected, slen_new)
        tree = EHTree.build(analysis, list(names.values()))
        visited = [update for _depth, update in tree.traverse()]
        assert set(visited) == set(names.values())
        ascii_art = tree.to_ascii()
        assert "SE1" in ascii_art and "PM" in ascii_art

    def test_no_relations_gives_forest_of_roots(self, example_state):
        names, *_rest = example_state
        updates = list(names.values())
        tree = EHTree.build(EliminationAnalysis(), updates)
        assert tree.root_updates() == updates
        assert tree.number_of_eliminated == 0
        assert tree.node(names["UD1"]).is_root

    def test_duplicate_updates_collapse(self, example_state):
        names, *_rest = example_state
        tree = EHTree.build(EliminationAnalysis(), [names["UD1"], names["UD1"]])
        assert tree.number_of_updates == 1
