"""Docstring gate for the documented packages (``repro.spl`` + ``repro.batching``).

CI enforces pydocstyle's D1xx rules on these two packages through ruff
(the ``docs`` job; see ``ruff.toml``), but ruff is not part of the
runtime toolchain — this AST-based mirror keeps the same gate inside
tier-1, so a missing docstring fails locally before it fails in CI.

The rule set mirrors the ruff selection (D100-D104, D106): every
module needs a docstring, as does every public class and every public
function/method.  Private names (leading underscore) and dunders are
exempt, matching the deliberate exclusion of D105/D107 in ``ruff.toml``.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

#: The packages whose public APIs the documentation satellite covers.
DOCUMENTED_PACKAGES = ("src/repro/spl", "src/repro/batching")

REPO_ROOT = Path(__file__).resolve().parent.parent


def documented_files() -> list[Path]:
    """Every Python file of the documented packages."""
    files: list[Path] = []
    for package in DOCUMENTED_PACKAGES:
        files.extend(sorted((REPO_ROOT / package).rglob("*.py")))
    assert files, "documented packages not found — repo layout changed?"
    return files


def _is_public(name: str) -> bool:
    return not name.startswith("_")


def missing_docstrings(path: Path) -> list[str]:
    """D1xx-style findings for one file, as ``kind name (line)`` strings."""
    tree = ast.parse(path.read_text(), filename=str(path))
    findings: list[str] = []
    if ast.get_docstring(tree) is None:
        findings.append("module docstring missing (D100/D104)")

    def visit(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.ClassDef):
                if _is_public(child.name) and ast.get_docstring(child) is None:
                    findings.append(
                        f"class {child.name} (line {child.lineno}) undocumented (D101/D106)"
                    )
                visit(child, inside_function)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if (
                    not inside_function
                    and _is_public(child.name)
                    and ast.get_docstring(child) is None
                ):
                    findings.append(
                        f"def {child.name} (line {child.lineno}) undocumented (D102/D103)"
                    )
                visit(child, True)
            else:
                visit(child, inside_function)

    visit(tree, False)
    return findings


@pytest.mark.parametrize(
    "path", documented_files(), ids=lambda p: str(p.relative_to(REPO_ROOT))
)
def test_public_api_is_documented(path: Path) -> None:
    findings = missing_docstrings(path)
    assert not findings, (
        f"{path.relative_to(REPO_ROOT)} fails the docstring gate:\n  "
        + "\n  ".join(findings)
    )
