"""Experiment harness: config presets, runner, table/figure aggregation, CLI."""

import pytest

from repro.cli import main as cli_main
from repro.experiments.config import (
    METHOD_ORDER,
    ExperimentConfig,
    full_config,
    quick_config,
    tiny_config,
)
from repro.experiments.figures import crossover_free, figure_series
from repro.experiments.report import (
    render_figure,
    render_table_xi,
    render_table_xii,
    render_table_xiii,
    render_table_xiv,
)
from repro.experiments.runner import MeasurementRecord, run_experiment
from repro.experiments.tables import (
    method_columns,
    reduction_percentages,
    table_xi,
    table_xii,
    table_xiii,
    table_xiv,
)


@pytest.fixture(scope="module")
def tiny_records():
    return run_experiment(tiny_config(), verify_against_oracle=True)


class TestConfig:
    def test_presets(self):
        assert tiny_config().number_of_cells == 1
        assert quick_config().number_of_cells == 5 * 3 * 3
        assert full_config().number_of_cells == 5 * 5 * 5 * 2

    def test_invalid_method(self):
        with pytest.raises(ValueError):
            ExperimentConfig(methods=("NOT-A-METHOD",))

    def test_invalid_repetitions(self):
        with pytest.raises(ValueError):
            ExperimentConfig(repetitions=0)

    def test_batch_plan_defaults_to_auto(self):
        assert ExperimentConfig().batch_plan == "auto"

    def test_invalid_recalibrate_every(self):
        with pytest.raises(ValueError):
            ExperimentConfig(recalibrate_every=-1)


class TestRunner:
    def test_records_shape(self, tiny_records):
        config = tiny_config()
        assert len(tiny_records) == config.number_of_cells * len(config.methods)
        assert {record.method for record in tiny_records} == set(METHOD_ORDER)

    def test_every_method_matches_oracle(self, tiny_records):
        assert all(record.matches_oracle for record in tiny_records)

    def test_elapsed_positive(self, tiny_records):
        assert all(record.elapsed_seconds > 0 for record in tiny_records)

    def test_records_carry_batch_timing_and_auto_plan(self, tiny_records):
        assert all(record.batch_plan == "auto" for record in tiny_records)
        assert all(record.maintenance_seconds >= 0 for record in tiny_records)
        assert any(record.maintenance_seconds > 0 for record in tiny_records)

    def test_telemetry_persisted_and_refittable(self, tmp_path):
        import dataclasses

        from repro.batching.telemetry import TelemetryLog

        path = tmp_path / "telemetry.json"
        config = dataclasses.replace(tiny_config(), telemetry_path=str(path))
        run_experiment(config)
        log = TelemetryLog.load(path)
        # One observation per method per cell (tiny: 1 cell, 4 methods).
        assert len(log) == len(config.methods)
        for observation in log:
            assert observation.elapsed_seconds > 0
            assert observation.executed in ("per-update", "coalesced", "partitioned")
            assert observation.requested == "auto"

    def test_online_recalibration_runs(self, tmp_path):
        """recalibrate_every exercises the runner-level refit; with only
        small per-update batches the guard keeps the incumbent, but the
        run must stay correct and persist its telemetry."""
        import dataclasses

        path = tmp_path / "telemetry.json"
        config = dataclasses.replace(
            tiny_config(), telemetry_path=str(path), recalibrate_every=2
        )
        records = run_experiment(config, verify_against_oracle=True)
        assert all(record.matches_oracle for record in records)
        assert path.exists()

    def test_ua_runs_single_pass(self, tiny_records):
        ua = [r for r in tiny_records if r.method == "UA-GPNM"]
        inc = [r for r in tiny_records if r.method == "INC-GPNM"]
        assert all(record.refinement_passes == 1 for record in ua)
        assert all(record.refinement_passes > 1 for record in inc)


class TestTables:
    def _fake_records(self):
        rows = []
        for dataset, base in (("email-EU-core", 1.0), ("DBLP", 10.0)):
            for scale, factor in (((6, 20), 1.0), ((10, 60), 2.0)):
                for method, multiplier in (
                    ("UA-GPNM", 1.0),
                    ("UA-GPNM-NoPar", 1.2),
                    ("EH-GPNM", 1.5),
                    ("INC-GPNM", 2.4),
                ):
                    rows.append(
                        MeasurementRecord(
                            dataset=dataset,
                            pattern_size=(8, 8),
                            delta_scale=scale,
                            repetition=0,
                            method=method,
                            elapsed_seconds=base * factor * multiplier,
                            refinement_passes=1,
                            slen_updates=0,
                            recomputed_rows=0,
                            eliminated_updates=0,
                            elimination_relations=0,
                        )
                    )
        return rows

    def test_table_xi_and_xii(self):
        records = self._fake_records()
        xi = table_xi(records)
        assert xi["email-EU-core"]["UA-GPNM"] == pytest.approx(1.5)
        assert "Average" in xi
        xii = table_xii(records)
        assert xii["email-EU-core"]["INC-GPNM"] == pytest.approx(100 * (2.4 - 1) / 2.4)
        assert "UA-GPNM" not in xii["email-EU-core"]

    def test_table_xiii_and_xiv(self):
        records = self._fake_records()
        xiii = table_xiii(records)
        assert list(xiii) == [(6, 20), (10, 60)]
        xiv = table_xiv(records)
        assert xiv[(6, 20)]["EH-GPNM"] == pytest.approx(100 * (1.5 - 1) / 1.5)

    def test_reduction_helpers(self):
        assert reduction_percentages({"UA-GPNM": 1.0, "INC-GPNM": 2.0}) == {"INC-GPNM": 50.0}
        assert reduction_percentages({"EH-GPNM": 2.0}) == {}
        assert method_columns({"x": {"INC-GPNM": 1.0, "UA-GPNM": 1.0}}) == ["UA-GPNM", "INC-GPNM"]

    def test_figure_series_and_crossover(self):
        records = self._fake_records()
        series = figure_series(records, "DBLP")
        assert (8, 8) in series
        assert series[(8, 8)]["UA-GPNM"][(6, 20)] == pytest.approx(10.0)
        assert crossover_free(series, "UA-GPNM", "INC-GPNM")
        assert not crossover_free(series, "INC-GPNM", "UA-GPNM")


class TestRendering:
    def test_renderers_produce_text(self, tiny_records):
        assert "Table XI" in render_table_xi(tiny_records)
        assert "Table XII" in render_table_xii(tiny_records)
        assert "Table XIII" in render_table_xiii(tiny_records)
        assert "Table XIV" in render_table_xiv(tiny_records)
        assert "Figure 5" in render_figure(tiny_records, "email-EU-core")


class TestCLI:
    def test_table_xi_command(self, capsys):
        assert cli_main(["--preset", "tiny", "table-xi"]) == 0
        assert "Table XI" in capsys.readouterr().out

    def test_figure_command(self, capsys):
        assert cli_main(["--preset", "tiny", "--verify", "figure", "--dataset", "email-EU-core"]) == 0
        captured = capsys.readouterr()
        assert "Figure 5" in captured.out
