"""Tests for the pluggable SLen storage backends (sparse vs dense).

The dense NumPy backend must be *observationally identical* to the
sparse dict-of-dicts backend: same distances after construction, after
every per-update maintenance kind (insert/delete × edge/node) and after
a coalesced batch, with the per-update deltas matching pair-for-pair.
"""

from __future__ import annotations

import pytest

from repro.batching.coalesce import coalesce_slen
from repro.batching.compiler import compile_batch
from repro.graph.updates import (
    delete_data_edge,
    delete_data_node,
    insert_data_edge,
    insert_data_node,
)
from repro.spl.backend import (
    BACKEND_NAMES,
    DENSE_AUTO_THRESHOLD,
    SparseSLenBackend,
    dense_available,
    resolve_backend_name,
)
from repro.spl.incremental import update_slen
from repro.spl.matrix import INF, SLenMatrix
from repro.workloads.pattern_gen import PatternSpec, generate_pattern
from repro.workloads.update_gen import UpdateWorkloadSpec, generate_update_batch
from tests.conftest import make_random_graph

pytestmark = pytest.mark.skipif(
    not dense_available(), reason="numpy unavailable; dense backend cannot run"
)


def both_backends(graph, horizon=INF):
    sparse = SLenMatrix.from_graph(graph, horizon=horizon, backend="sparse")
    dense = SLenMatrix.from_graph(graph, horizon=horizon, backend="dense")
    return sparse, dense


class TestSelection:
    def test_resolve_names(self):
        assert resolve_backend_name("sparse", 10_000) == "sparse"
        assert resolve_backend_name("dense", 3) == "dense"
        assert resolve_backend_name("auto", DENSE_AUTO_THRESHOLD - 1) == "sparse"
        assert resolve_backend_name("auto", DENSE_AUTO_THRESHOLD) == "dense"

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            resolve_backend_name("csr", 10)
        with pytest.raises(ValueError):
            SLenMatrix.from_graph(make_random_graph(seed=1), backend="csr")

    def test_backend_names_constant(self):
        assert set(BACKEND_NAMES) == {"sparse", "dense", "auto"}

    def test_auto_matrix_resolves_by_node_count(self):
        small = SLenMatrix.from_graph(make_random_graph(seed=1), backend="auto")
        assert small.backend_name == "sparse"

    def test_to_backend_roundtrip(self):
        graph = make_random_graph(seed=2)
        sparse = SLenMatrix.from_graph(graph)
        dense = sparse.to_backend("dense")
        assert dense.backend_name == "dense"
        assert dense == sparse
        back = dense.to_backend("sparse")
        assert back.backend_name == "sparse"
        assert back == sparse
        assert isinstance(back.backend, SparseSLenBackend)

    def test_copy_preserves_backend_and_horizon(self):
        graph = make_random_graph(seed=3)
        dense = SLenMatrix.from_graph(graph, horizon=2, backend="dense")
        clone = dense.copy()
        assert clone.backend_name == "dense"
        assert clone.horizon == 2
        clone.set_distance("n0", "n1", 1)
        assert clone != dense or dense.distance("n0", "n1") == 1


class TestConstructionParity:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("horizon", (INF, 2, 4))
    def test_from_graph_matches_sparse(self, seed, horizon):
        graph = make_random_graph(num_nodes=25 + seed * 7, num_edges=60 + seed * 25, seed=seed)
        sparse, dense = both_backends(graph, horizon=horizon)
        assert dense == sparse
        assert dense.number_of_finite_entries == sparse.number_of_finite_entries
        assert dense.nodes() == sparse.nodes()

    def test_queries_match(self):
        graph = make_random_graph(seed=11)
        sparse, dense = both_backends(graph)
        for node in graph.nodes():
            assert dense.row(node) == sparse.row(node)
            assert dict(dense.row_view(node)) == dict(sparse.row_view(node))
            assert dense.column(node) == sparse.column(node)
            assert dense.reachable_from(node) == sparse.reachable_from(node)
            assert dense.within(node, 2) == sparse.within(node, 2)

    def test_empty_graph(self):
        from repro.graph.digraph import DataGraph

        sparse, dense = both_backends(DataGraph())
        assert dense == sparse
        assert dense.number_of_nodes == 0

    def test_edgeless_graph(self):
        from repro.graph.digraph import DataGraph

        graph = DataGraph({"a": "X", "b": "Y"})
        sparse, dense = both_backends(graph)
        assert dense == sparse
        assert dense.distance("a", "b") == INF
        assert dense.distance("a", "a") == 0


class TestUpdateParity:
    """Dense and sparse must stay equal after every update kind."""

    @pytest.mark.parametrize("horizon", (INF, 3))
    def test_edge_insert(self, horizon):
        graph = make_random_graph(seed=21)
        sparse, dense = both_backends(graph, horizon=horizon)
        update = insert_data_edge("n0", "n17")
        if graph.has_edge("n0", "n17"):
            graph.remove_edge("n0", "n17")
        update.apply(graph)
        delta_sparse = update_slen(sparse, graph, update)
        delta_dense = update_slen(dense, graph, update)
        assert delta_dense.changed_pairs == delta_sparse.changed_pairs
        assert dense == sparse
        assert sparse == SLenMatrix.from_graph(graph, horizon=horizon)

    @pytest.mark.parametrize("horizon", (INF, 3))
    def test_edge_delete(self, horizon):
        graph = make_random_graph(seed=22)
        source, target = next(iter(graph.edges()))
        sparse, dense = both_backends(graph, horizon=horizon)
        update = delete_data_edge(source, target)
        update.apply(graph)
        delta_sparse = update_slen(sparse, graph, update)
        delta_dense = update_slen(dense, graph, update)
        assert delta_dense.changed_pairs == delta_sparse.changed_pairs
        assert delta_dense.recomputed_sources == delta_sparse.recomputed_sources
        assert dense == sparse
        assert sparse == SLenMatrix.from_graph(graph, horizon=horizon)

    @pytest.mark.parametrize("horizon", (INF, 3))
    def test_node_insert(self, horizon):
        graph = make_random_graph(seed=23)
        sparse, dense = both_backends(graph, horizon=horizon)
        update = insert_data_node("fresh", "A", [("fresh", "n3"), ("n5", "fresh")])
        update.apply(graph)
        delta_sparse = update_slen(sparse, graph, update)
        delta_dense = update_slen(dense, graph, update)
        assert delta_dense.changed_pairs == delta_sparse.changed_pairs
        assert delta_dense.structural_nodes == delta_sparse.structural_nodes
        assert dense == sparse
        assert sparse == SLenMatrix.from_graph(graph, horizon=horizon)

    @pytest.mark.parametrize("horizon", (INF, 3))
    def test_node_delete(self, horizon):
        graph = make_random_graph(seed=24)
        victim = max(graph.nodes(), key=lambda n: graph.out_degree(n) + graph.in_degree(n))
        sparse, dense = both_backends(graph, horizon=horizon)
        update = delete_data_node(victim, graph.labels_of(victim))
        update.apply(graph)
        delta_sparse = update_slen(sparse, graph, update)
        delta_dense = update_slen(dense, graph, update)
        assert delta_dense.changed_pairs == delta_sparse.changed_pairs
        assert delta_dense.recomputed_sources == delta_sparse.recomputed_sources
        assert dense == sparse
        assert sparse == SLenMatrix.from_graph(graph, horizon=horizon)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("horizon", (INF, 4))
    def test_coalesced_batch(self, seed, horizon):
        graph = make_random_graph(num_nodes=40, num_edges=120, seed=30 + seed)
        pattern = generate_pattern(
            PatternSpec(num_nodes=4, num_edges=4, labels=("A", "B", "C"), seed=seed)
        )
        batch = generate_update_batch(
            graph,
            pattern,
            UpdateWorkloadSpec(num_pattern_updates=0, num_data_updates=20, seed=40 + seed),
        )
        sparse, dense = both_backends(graph, horizon=horizon)
        compiled = compile_batch(batch.data_updates())
        surviving = compiled.data_updates()
        for update in surviving:
            update.apply(graph)
        outcome_sparse = coalesce_slen(sparse, graph, surviving)
        outcome_dense = coalesce_slen(dense, graph, surviving)
        assert outcome_dense.delta.changed_pairs == outcome_sparse.delta.changed_pairs
        assert [d.changed_pairs for d in outcome_dense.per_update] == [
            d.changed_pairs for d in outcome_sparse.per_update
        ]
        assert dense == sparse
        assert sparse == SLenMatrix.from_graph(graph, horizon=horizon)


class TestTransposedSettle:
    """The sparse per-target transposed deletion sweep.

    Structure-level parity: for the same affected map, the transposed
    sweep (one settle per distinct *target*, shared across sources) must
    return exactly what the per-source settle returns, and the sparse
    backend must route between the orientations without changing any
    result.  This closes the sparse/dense deletion-kernel gap — the
    dense batched settle shares work across sources implicitly.
    """

    def _deletion_fixture(self, seed, deletions=3):
        graph = make_random_graph(num_nodes=35, num_edges=110, seed=seed)
        matrix = SLenMatrix.from_graph(graph)
        backend = matrix.backend
        affected: dict = {}
        removed = []
        for source, target in sorted(graph.edges(), key=repr)[:deletions]:
            for x, targets in backend.affected_by_edge_deletion(source, target).items():
                affected.setdefault(x, set()).update(targets)
            removed.append((source, target))
        for source, target in removed:
            graph.remove_edge(source, target)
        return graph, matrix, affected

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_per_source_settle(self, seed):
        from repro.spl.backend import SLenBackend

        graph, matrix, affected = self._deletion_fixture(seed)
        backend = matrix.backend
        per_source = SLenBackend.settle_sources(backend, graph, affected)
        transposed = backend.settle_sources_transposed(graph, affected)
        assert transposed == per_source

    @pytest.mark.parametrize("seed", range(8))
    def test_orientation_routing_is_result_invariant(self, seed):
        from repro.spl.backend import SLenBackend

        graph, matrix, affected = self._deletion_fixture(seed)
        backend = matrix.backend
        routed = backend.settle_sources(graph, affected)
        assert routed == SLenBackend.settle_sources(backend, graph, affected)

    def test_sink_shape_prefers_transposed_and_stays_exact(self):
        """Deleting edges into a sink damages many sources x one target —
        the transposed sweep's home turf."""
        from repro.graph.digraph import DataGraph

        nodes = {f"v{i}": "X" for i in range(8)}
        nodes["sink"] = "X"
        edges = [(f"v{i}", f"v{i+1}") for i in range(7)] + [("v7", "sink")]
        graph = DataGraph(nodes, edges)
        matrix = SLenMatrix.from_graph(graph)
        backend = matrix.backend
        affected = backend.affected_by_edge_deletion("v7", "sink")
        assert len(affected) > 1  # many sources
        assert {y for ys in affected.values() for y in ys} == {"sink"}  # one target
        graph.remove_edge("v7", "sink")
        update = delete_data_edge("v7", "sink")
        delta = update_slen(matrix, graph, update)
        assert matrix == SLenMatrix.from_graph(graph)
        assert all(new == INF for _old, new in delta.changed_pairs.values())

    @pytest.mark.parametrize("seed", range(4))
    def test_skip_sets_respected(self, seed):
        """The coalesced pass settles against the deletions-only graph:
        both orientations must honour skip_edges / skip_nodes."""
        from repro.spl.backend import SLenBackend

        graph, matrix, affected = self._deletion_fixture(seed)
        # Pretend two extra edges and one node were batch-inserted: the
        # settle must ignore them in either orientation.
        extra_edges = []
        nodes = sorted(graph.nodes(), key=repr)
        for source, target in ((nodes[0], nodes[5]), (nodes[3], nodes[9])):
            if not graph.has_edge(source, target):
                graph.add_edge(source, target)
                extra_edges.append((source, target))
        graph.add_node("fresh", "X")
        graph.add_edge(nodes[1], "fresh")
        graph.add_edge("fresh", nodes[2])
        skip_edges = frozenset(extra_edges) | {(nodes[1], "fresh"), ("fresh", nodes[2])}
        skip_nodes = frozenset({"fresh"})
        backend = matrix.backend
        per_source = SLenBackend.settle_sources(
            backend, graph, affected, skip_edges=skip_edges, skip_nodes=skip_nodes
        )
        transposed = backend.settle_sources_transposed(
            graph, affected, skip_edges=skip_edges, skip_nodes=skip_nodes
        )
        assert transposed == per_source


class TestBlockedLayout:
    """The blocked dense layout: block boundaries, elision, scaling.

    A tiny ``dense_block_size`` forces multi-block grids on small
    graphs, so every kernel crosses block frontiers; disconnected
    communities force elided (absent) ``INF``-blocks; and the 10⁴-node
    case pins the acceptance bar — sparse parity with allocated memory
    below the dense-full O(n²) baseline.
    """

    def _blocked(self, graph, block_size, horizon=INF):
        matrix = SLenMatrix.from_graph(
            graph, horizon=horizon, backend="dense", dense_block_size=block_size
        )
        assert matrix.backend.block_size == block_size
        assert matrix.backend._num_block_rows > 1  # genuinely multi-block
        return matrix

    @pytest.mark.parametrize("block_size", (4, 8, 16))
    @pytest.mark.parametrize("horizon", (INF, 3))
    def test_update_stream_parity_across_blocks(self, block_size, horizon):
        """Every update kind, applied sequentially, on a multi-block grid."""
        graph = make_random_graph(num_nodes=37, num_edges=110, seed=61)
        sparse = SLenMatrix.from_graph(graph, horizon=horizon, backend="sparse")
        dense = self._blocked(graph, block_size, horizon=horizon)
        some_edge = sorted(graph.edges(), key=repr)[0][:2]
        updates = [
            insert_data_edge("n0", "n30"),
            delete_data_edge(*some_edge),
            insert_data_node("fresh", "A", [("fresh", "n3"), ("n5", "fresh")]),
            delete_data_node("n11", graph.labels_of("n11")),
        ]
        if graph.has_edge("n0", "n30"):
            graph.remove_edge("n0", "n30")
        for update in updates:
            update.apply(graph)
            delta_sparse = update_slen(sparse, graph, update)
            delta_dense = update_slen(dense, graph, update)
            assert delta_dense.changed_pairs == delta_sparse.changed_pairs
            assert dense == sparse
        assert sparse == SLenMatrix.from_graph(graph, horizon=horizon)

    @pytest.mark.parametrize("seed", range(3))
    def test_coalesced_batch_parity_across_blocks(self, seed):
        graph = make_random_graph(num_nodes=40, num_edges=120, seed=70 + seed)
        pattern = generate_pattern(
            PatternSpec(num_nodes=4, num_edges=4, labels=("A", "B", "C"), seed=seed)
        )
        batch = generate_update_batch(
            graph,
            pattern,
            UpdateWorkloadSpec(num_pattern_updates=0, num_data_updates=20, seed=80 + seed),
        )
        sparse = SLenMatrix.from_graph(graph, backend="sparse")
        dense = self._blocked(graph, block_size=8)
        compiled = compile_batch(batch.data_updates())
        surviving = compiled.data_updates()
        for update in surviving:
            update.apply(graph)
        outcome_sparse = coalesce_slen(sparse, graph, surviving)
        outcome_dense = coalesce_slen(dense, graph, surviving)
        assert outcome_dense.delta.changed_pairs == outcome_sparse.delta.changed_pairs
        assert dense == sparse == SLenMatrix.from_graph(graph)

    def test_slot_reuse_across_block_frontiers(self):
        """Removed slots are reused by later insertions even when the
        reused slot and the node's distances live in different blocks."""
        graph = make_random_graph(num_nodes=30, num_edges=90, seed=62)
        sparse = SLenMatrix.from_graph(graph, backend="sparse")
        dense = self._blocked(graph, block_size=4)
        # Free slots in several different blocks, then re-add nodes: the
        # free list hands the slots back in reverse order, so the new
        # nodes land in other blocks than their namesakes occupied.
        victims = ["n2", "n13", "n27"]
        for victim in victims:
            update = delete_data_node(victim, graph.labels_of(victim))
            update.apply(graph)
            update_slen(sparse, graph, update)
            update_slen(dense, graph, update)
        for position, name in enumerate(("reborn-a", "reborn-b", "reborn-c")):
            edges = [(name, f"n{3 + position}"), (f"n{20 + position}", name)]
            update = insert_data_node(name, "A", edges)
            update.apply(graph)
            delta_sparse = update_slen(sparse, graph, update)
            delta_dense = update_slen(dense, graph, update)
            assert delta_dense.changed_pairs == delta_sparse.changed_pairs
        assert dense == sparse == SLenMatrix.from_graph(graph)
        assert len(dense.backend._free) == 0

    def test_deletion_settle_spans_elided_inf_blocks(self):
        """A deletion settle whose affected region crosses a block
        frontier while unrelated block pairs stay elided (absent)."""
        from repro.graph.digraph import DataGraph

        # Two chains in disjoint slot ranges (separate blocks at size 4)
        # plus an isolated community that never reaches anything: the
        # cross blocks between the communities are elided INF-blocks.
        nodes = {f"a{i}": "X" for i in range(8)}
        nodes.update({f"b{i}": "X" for i in range(8)})
        nodes.update({f"c{i}": "X" for i in range(4)})
        edges = [(f"a{i}", f"a{i+1}") for i in range(7)]
        edges += [(f"b{i}", f"b{i+1}") for i in range(7)]
        graph = DataGraph(nodes, edges)
        sparse = SLenMatrix.from_graph(graph, backend="sparse")
        dense = self._blocked(graph, block_size=4)
        backend = dense.backend
        assert backend.occupied_blocks() < backend.total_blocks()
        before = backend.occupied_blocks()
        # Delete an edge in the middle of chain a: the affected region
        # (a0..a3 × a4..a7) spans block boundaries; the settle must read
        # SENTINEL through the elided blocks without materialising them.
        update = delete_data_edge("a3", "a4")
        update.apply(graph)
        delta_sparse = update_slen(sparse, graph, update)
        delta_dense = update_slen(dense, graph, update)
        assert delta_dense.changed_pairs == delta_sparse.changed_pairs
        assert delta_dense.recomputed_sources == delta_sparse.recomputed_sources
        assert dense == sparse == SLenMatrix.from_graph(graph)
        # The settle emptied entries; it must not have allocated blocks.
        assert backend.occupied_blocks() <= before

    def test_inf_blocks_are_elided(self):
        """Disconnected communities never allocate their cross blocks."""
        from repro.graph.digraph import DataGraph

        nodes = {}
        edges = []
        for community in range(4):
            for i in range(8):
                nodes[f"c{community}-{i}"] = "X"
            edges += [
                (f"c{community}-{i}", f"c{community}-{i+1}") for i in range(7)
            ]
        graph = DataGraph(nodes, edges)
        dense = self._blocked(graph, block_size=8)
        backend = dense.backend
        # Only the four diagonal blocks hold finite entries.
        assert backend.total_blocks() == 16
        assert backend.occupied_blocks() == 4
        assert backend.allocated_bytes() == 4 * 8 * 8 * 4
        assert backend.allocated_bytes() < backend.dense_full_bytes()
        assert dense == SLenMatrix.from_graph(graph, backend="sparse")

    @pytest.mark.parametrize("horizon", (INF, 3))
    def test_bitset_matches_boolean_frontier(self, horizon):
        """The bit-packed BFS is a drop-in for the boolean reference."""
        graph = make_random_graph(num_nodes=45, num_edges=140, seed=63)
        bitset = SLenMatrix(graph.nodes(), horizon=horizon, backend="dense", dense_block_size=16)
        bitset.backend.build(graph)
        boolean = SLenMatrix(graph.nodes(), horizon=horizon, backend="dense", dense_block_size=16)
        boolean.backend.frontier_mode = "boolean"
        boolean.backend.build(graph)
        assert bitset == boolean
        # recompute_rows dispatches through the same kernels.
        if not graph.has_edge("n0", "n40"):
            graph.add_edge("n0", "n40")
        changed_bitset = bitset.recompute_rows(graph, ["n0", "n1", "n17"])
        changed_boolean = boolean.recompute_rows(graph, ["n0", "n1", "n17"])
        assert changed_bitset == changed_boolean
        assert bitset == boolean

    def test_block_size_knob_threading(self):
        graph = make_random_graph(seed=64)
        dense = SLenMatrix.from_graph(graph, backend="dense", dense_block_size=32)
        assert dense.backend.block_size == 32
        assert dense.copy().backend.block_size == 32
        converted = SLenMatrix.from_graph(graph).to_backend("dense", dense_block_size=16)
        assert converted.backend.block_size == 16
        assert converted == dense
        from repro.experiments.config import ExperimentConfig

        config = ExperimentConfig(dense_block_size=64)
        assert config.dense_block_size == 64
        with pytest.raises(ValueError):
            ExperimentConfig(dense_block_size=0)
        with pytest.raises(ValueError):
            SLenMatrix.from_graph(graph, backend="dense", dense_block_size=-1)

    def test_parity_and_memory_at_ten_thousand_nodes(self):
        """The acceptance bar: dense == sparse at 10⁴ nodes with the
        allocated block memory strictly below the dense-full baseline."""
        from repro.workloads.generators import generate_community_graph

        graph = generate_community_graph(
            10_000, community_size=500, seed=97, intra_degree=2, bridges=False
        )
        sparse = SLenMatrix.from_graph(graph, horizon=2, backend="sparse")
        dense = SLenMatrix.from_graph(graph, horizon=2, backend="dense")
        backend = dense.backend
        assert backend.allocated_bytes() < backend.dense_full_bytes()
        assert backend.occupied_blocks() < backend.total_blocks()
        assert dense == sparse
        # Maintenance stays exact at scale, across block boundaries.
        update = insert_data_edge("n10", "n9000")
        if graph.has_edge("n10", "n9000"):
            graph.remove_edge("n10", "n9000")
        update.apply(graph)
        delta_sparse = update_slen(sparse, graph, update)
        delta_dense = update_slen(dense, graph, update)
        assert delta_dense.changed_pairs == delta_sparse.changed_pairs
        removal = delete_data_edge("n10", "n9000")
        removal.apply(graph)
        delta_sparse = update_slen(sparse, graph, removal)
        delta_dense = update_slen(dense, graph, removal)
        assert delta_dense.changed_pairs == delta_sparse.changed_pairs
        assert dense == sparse


class TestSourcesWithin:
    """The bulk matching kernel behind the simulation fixpoint."""

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("bound", (1, 2, 3, INF))
    def test_dense_matches_generic(self, seed, bound):
        from repro.spl.backend import SLenBackend

        graph = make_random_graph(num_nodes=30, num_edges=90, seed=seed)
        sparse, dense = both_backends(graph)
        nodes = sorted(graph.nodes(), key=repr)
        sources = set(nodes[::2])
        targets = set(nodes[1::3])
        expected = SLenBackend.sources_within(sparse.backend, sources, targets, bound)
        assert sparse.sources_within(sources, targets, bound) == expected
        assert dense.sources_within(sources, targets, bound) == expected

    def test_blocked_grid_and_edge_cases(self):
        graph = make_random_graph(num_nodes=30, num_edges=90, seed=9)
        dense = SLenMatrix.from_graph(graph, backend="dense", dense_block_size=4)
        sparse = SLenMatrix.from_graph(graph, backend="sparse")
        nodes = sorted(graph.nodes(), key=repr)
        sources = set(nodes[:15])
        targets = set(nodes[15:])
        assert dense.sources_within(sources, targets, 2) == sparse.sources_within(
            sources, targets, 2
        )
        assert dense.sources_within(sources, set(), 3) == set()
        assert dense.sources_within(set(), targets, 3) == set()
        # Out-of-universe nodes are ignored, not an error.
        assert dense.sources_within({"ghost"}, targets, 3) == set()
        assert dense.sources_within(sources, {"ghost"}, 3) == set()
        # bound 0 only admits sources that are themselves targets.
        assert dense.sources_within(sources, sources, 0) == sources

    def test_matches_scalar_edge_constraint(self):
        from repro.matching.bgs import edge_constraint_holds

        graph = make_random_graph(num_nodes=25, num_edges=70, seed=10)
        sparse, dense = both_backends(graph)
        nodes = sorted(graph.nodes(), key=repr)
        targets = set(nodes[5:12])
        for bound in (1, 2, INF):
            expected = {
                node
                for node in nodes
                if edge_constraint_holds(sparse, node, targets, bound)
            }
            assert dense.sources_within(nodes, targets, bound) == expected


class TestDenseStructure:
    """Dense-specific mechanics: slot reuse, growth, caching."""

    def test_grow_past_capacity(self):
        from repro.graph.digraph import DataGraph

        graph = DataGraph({"a": "X", "b": "X"}, [("a", "b")])
        dense = SLenMatrix.from_graph(graph, backend="dense")
        for position in range(10):
            node = f"extra{position}"
            graph.add_node(node, "X")
            graph.add_edge("b", node)
            dense.add_node(node)
            update_slen(dense, graph, insert_data_edge("b", node))
        assert dense == SLenMatrix.from_graph(graph)

    def test_slot_reuse_after_removal(self):
        graph = make_random_graph(seed=41)
        dense = SLenMatrix.from_graph(graph, backend="dense")
        dense.remove_node("n7")
        dense.add_node("reborn")
        assert dense.distance("reborn", "reborn") == 0
        assert dense.distance("n0", "reborn") == INF
        assert "n7" not in dense.nodes()

    def test_row_view_cache_invalidation(self):
        graph = make_random_graph(seed=42)
        dense = SLenMatrix.from_graph(graph, backend="dense")
        before = dict(dense.row_view("n1"))
        dense.set_distance("n1", "n2", 9)
        after = dict(dense.row_view("n1"))
        assert after["n2"] == 9
        unchanged = {target: dist for target, dist in after.items() if target != "n2"}
        assert unchanged == {target: dist for target, dist in before.items() if target != "n2"}

    def test_set_distance_beyond_horizon_dropped(self):
        graph = make_random_graph(seed=43)
        dense = SLenMatrix.from_graph(graph, horizon=2, backend="dense")
        dense.set_distance("n0", "n1", 9)
        assert dense.distance("n0", "n1") == INF

    def test_set_row_matches_sparse(self):
        graph = make_random_graph(seed=44)
        sparse, dense = both_backends(graph, horizon=3)
        replacement = {"n2": 1, "n3": 5, "n4": 2}
        sparse.set_row("n0", replacement)
        dense.set_row("n0", replacement)
        assert dense == sparse
        assert dense.distance("n0", "n3") == INF  # beyond horizon

    def test_recompute_rows_matches_sparse(self):
        graph = make_random_graph(seed=45)
        sparse, dense = both_backends(graph)
        if not graph.has_edge("n0", "n20"):
            graph.add_edge("n0", "n20")
        changed_sparse = sparse.recompute_rows(graph, ["n0", "n1", "n2"])
        changed_dense = dense.recompute_rows(graph, ["n0", "n1", "n2"])
        assert changed_dense == changed_sparse
        assert dense == sparse

    def test_repr_names_backend(self):
        graph = make_random_graph(seed=46)
        dense = SLenMatrix.from_graph(graph, backend="dense")
        assert "dense" in repr(dense)

    def test_tuple_node_ids(self):
        """Node ids are only required to be Hashable — tuples included.

        Regression: the relax kernel's object-array assembly must not let
        numpy unpack sequence ids into extra dimensions.
        """
        from repro.graph.digraph import DataGraph

        nodes = {("shard", position): "X" for position in range(6)}
        edges = [(("shard", p), ("shard", p + 1)) for p in range(5)]
        graph = DataGraph(nodes, edges)
        sparse, dense = both_backends(graph)
        assert dense == sparse
        update = insert_data_edge(("shard", 4), ("shard", 0))
        update.apply(graph)
        delta_sparse = update_slen(sparse, graph, update)
        delta_dense = update_slen(dense, graph, update)
        assert delta_dense.changed_pairs == delta_sparse.changed_pairs
        assert dense == sparse == SLenMatrix.from_graph(graph)
        removal = delete_data_edge(("shard", 2), ("shard", 3))
        removal.apply(graph)
        update_slen(sparse, graph, removal)
        update_slen(dense, graph, removal)
        assert dense == sparse == SLenMatrix.from_graph(graph)
