"""Tests for the SLen all-pairs matrix, including the paper's Table III."""

import pytest

from repro import paper_example
from repro.graph.errors import MissingNodeError
from repro.spl.matrix import INF, SLenMatrix
from tests.conftest import make_random_graph


class TestTableIII:
    def test_matches_paper(self, figure1_data, figure1_slen):
        expected = paper_example.table3_slen_expected()
        for source in figure1_data.nodes():
            for target in figure1_data.nodes():
                assert figure1_slen.distance(source, target) == expected.get(
                    (source, target), INF
                ), (source, target)


class TestQueries:
    def test_row_and_column(self, figure1_slen):
        assert figure1_slen.row("PM1")["SE2"] == 1
        assert figure1_slen.column("S1")["TE2"] == 1
        assert "TE2" not in figure1_slen.row("PM1")

    def test_row_view_is_internal(self, figure1_slen):
        view = figure1_slen.row_view("PM1")
        assert view["DB1"] == 1

    def test_within_and_reachable(self, figure1_slen):
        assert figure1_slen.within("PM1", 1) == {"PM1", "SE2", "DB1"}
        assert "TE2" not in figure1_slen.reachable_from("PM1")

    def test_missing_node(self, figure1_slen):
        with pytest.raises(MissingNodeError):
            figure1_slen.distance("PM1", "nope")

    def test_counts(self, figure1_slen):
        assert figure1_slen.number_of_nodes == 8
        assert figure1_slen.number_of_finite_entries == sum(
            1 for _ in figure1_slen.finite_entries()
        )


class TestMutation:
    def test_set_distance_and_inf(self, figure1_slen):
        figure1_slen.set_distance("PM1", "TE2", 7)
        assert figure1_slen.distance("PM1", "TE2") == 7
        figure1_slen.set_distance("PM1", "TE2", INF)
        assert figure1_slen.distance("PM1", "TE2") == INF

    def test_set_row(self, figure1_slen):
        figure1_slen.set_row("PM1", {"SE1": 9})
        assert figure1_slen.distance("PM1", "SE1") == 9
        assert figure1_slen.distance("PM1", "PM1") == 0
        assert figure1_slen.distance("PM1", "SE2") == INF

    def test_add_remove_node(self, figure1_slen):
        figure1_slen.add_node("new")
        assert figure1_slen.distance("new", "new") == 0
        figure1_slen.remove_node("new")
        with pytest.raises(MissingNodeError):
            figure1_slen.distance("new", "new")

    def test_recompute_rows(self, figure1_data, figure1_slen):
        figure1_data.add_edge("S1", "TE2")
        changed = figure1_slen.recompute_rows(figure1_data, ["S1", "PM2"])
        assert "S1" in changed
        assert figure1_slen.distance("S1", "TE2") == 1


class TestCopyCompareExport:
    def test_copy_independent(self, figure1_slen):
        clone = figure1_slen.copy()
        clone.set_distance("PM1", "SE2", 5)
        assert figure1_slen.distance("PM1", "SE2") == 1
        assert clone != figure1_slen

    def test_differences(self, figure1_slen):
        other = figure1_slen.copy()
        other.set_distance("PM1", "SE2", 5)
        diff = figure1_slen.differences(other)
        assert diff == {("PM1", "SE2"): (1, 5)}

    def test_to_dense(self, figure1_slen):
        dense, order = figure1_slen.to_dense()
        index = {node: position for position, node in enumerate(order)}
        assert dense[index["PM1"], index["SE2"]] == 1
        assert dense[index["PM1"], index["TE2"]] == INF

    def test_to_dense_bad_order(self, figure1_slen):
        with pytest.raises(ValueError):
            figure1_slen.to_dense(order=["PM1"])

    def test_from_rows(self, figure1_data, figure1_slen):
        rows = {node: figure1_slen.row(node) for node in figure1_data.nodes()}
        rebuilt = SLenMatrix.from_rows(figure1_data.nodes(), rows)
        assert rebuilt == figure1_slen

    def test_unhashable(self, figure1_slen):
        with pytest.raises(TypeError):
            hash(figure1_slen)


class TestHorizon:
    def test_bounded_matches_truncated_full(self):
        graph = make_random_graph(seed=3)
        full = SLenMatrix.from_graph(graph)
        bounded = SLenMatrix.from_graph(graph, horizon=2)
        assert bounded.horizon == 2
        for source in graph.nodes():
            for target in graph.nodes():
                exact = full.distance(source, target)
                expected = exact if exact <= 2 else INF
                assert bounded.distance(source, target) == expected

    def test_set_distance_beyond_horizon_dropped(self):
        graph = make_random_graph(seed=3)
        bounded = SLenMatrix.from_graph(graph, horizon=2)
        source = next(iter(graph.nodes()))
        other = next(node for node in graph.nodes() if node != source)
        bounded.set_distance(source, other, 9)
        assert bounded.distance(source, other) == INF

    def test_copy_preserves_horizon(self):
        graph = make_random_graph(seed=3)
        bounded = SLenMatrix.from_graph(graph, horizon=3)
        assert bounded.copy().horizon == 3

    def test_negative_horizon_rejected(self):
        with pytest.raises(ValueError):
            SLenMatrix(horizon=-1)
