"""Incremental SLen maintenance: paper Tables V/VI plus property tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import paper_example
from repro.graph.errors import UpdateError
from repro.graph.updates import (
    delete_data_edge,
    delete_data_node,
    insert_data_edge,
    insert_data_node,
    insert_pattern_edge,
)
from repro.spl.incremental import update_slen
from repro.spl.matrix import INF, SLenMatrix
from tests.conftest import make_random_graph


class TestPaperTablesVAndVI:
    def test_table_v_ud1(self, figure1_data, figure1_slen):
        update = insert_data_edge("SE1", "TE2")
        update.apply(figure1_data)
        delta = update_slen(figure1_slen, figure1_data, update)
        # Table V: a new TE2 column appears; every other entry is unchanged.
        expected_te2 = {"PM1": 3, "PM2": 2, "SE1": 1, "SE2": 3, "S1": 3, "TE1": 4, "DB1": 2}
        for source, distance in expected_te2.items():
            assert figure1_slen.distance(source, "TE2") == distance
        assert all(target == "TE2" for _source, target in delta.changed_pairs)
        assert delta.affected_nodes >= set(expected_te2) | {"TE2"}

    def test_table_vi_ud2(self, figure1_data, figure1_slen):
        update = insert_data_edge("DB1", "S1")
        update.apply(figure1_data)
        delta = update_slen(figure1_slen, figure1_data, update)
        assert figure1_slen.distance("PM1", "S1") == 2
        assert figure1_slen.distance("SE2", "S1") == 2
        assert figure1_slen.distance("TE1", "S1") == 3
        assert figure1_slen.distance("DB1", "S1") == 1
        # Table VII: the affected nodes of UD2.
        assert delta.affected_nodes == {"PM1", "SE2", "S1", "TE1", "DB1"}

    def test_example8_coverage(self, figure1_data, figure1_slen):
        ud1 = insert_data_edge("SE1", "TE2")
        ud2 = insert_data_edge("DB1", "S1")
        ud1.apply(figure1_data)
        delta1 = update_slen(figure1_slen, figure1_data, ud1)
        ud2.apply(figure1_data)
        delta2 = update_slen(figure1_slen, figure1_data, ud2)
        assert delta1.affected_nodes >= delta2.affected_nodes


class TestContracts:
    def test_insert_requires_applied_graph(self, figure1_data, figure1_slen):
        with pytest.raises(UpdateError):
            update_slen(figure1_slen, figure1_data, insert_data_edge("SE1", "TE2"))

    def test_delete_requires_applied_graph(self, figure1_data, figure1_slen):
        with pytest.raises(UpdateError):
            update_slen(figure1_slen, figure1_data, delete_data_edge("PM1", "SE2"))

    def test_pattern_update_rejected(self, figure1_data, figure1_slen):
        with pytest.raises(UpdateError):
            update_slen(figure1_slen, figure1_data, insert_pattern_edge("PM", "TE", 2))

    def test_delta_len_and_empty(self, figure1_data, figure1_slen):
        update = insert_data_edge("PM2", "SE2")  # distance already 2 -> only improves some pairs
        update.apply(figure1_data)
        delta = update_slen(figure1_slen, figure1_data, update)
        assert len(delta) == len(delta.changed_pairs)
        assert delta.is_empty == (not delta.changed_pairs)


def _random_update_sequence(graph, count, seed):
    """Build an applicable random mix of the four data-update kinds."""
    rng = random.Random(seed)
    updates = []
    nodes = sorted(graph.nodes(), key=repr)
    for position in range(count):
        roll = rng.random()
        current_edges = sorted(graph.edges(), key=repr)
        current_nodes = sorted(graph.nodes(), key=repr)
        if roll < 0.35:
            source, target = rng.sample(current_nodes, 2)
            if graph.has_edge(source, target):
                continue
            update = insert_data_edge(source, target)
        elif roll < 0.6 and current_edges:
            source, target = rng.choice(current_edges)
            update = delete_data_edge(source, target)
        elif roll < 0.8:
            anchor = rng.choice(current_nodes)
            update = insert_data_node(f"x{seed}_{position}", "A", [(f"x{seed}_{position}", anchor)])
        elif len(current_nodes) > 3:
            update = delete_data_node(rng.choice(current_nodes))
        else:
            continue
        update.apply(graph)
        updates.append(update)
    return updates


class TestAgainstFullRecompute:
    @pytest.mark.parametrize("seed", range(6))
    def test_sequence_matches_recompute(self, seed):
        graph = make_random_graph(num_nodes=24, num_edges=70, seed=seed)
        slen = SLenMatrix.from_graph(graph)
        # Generate the sequence against a scratch copy, then replay it on a
        # fresh copy while maintaining the matrix incrementally.
        sequence = _random_update_sequence(graph.copy(), 12, seed)
        working = graph.copy()
        for update in sequence:
            update.apply(working)
            update_slen(slen, working, update)
        assert slen == SLenMatrix.from_graph(working)

    @pytest.mark.parametrize("seed", range(4))
    def test_bounded_horizon_matches_truncated_recompute(self, seed):
        graph = make_random_graph(num_nodes=24, num_edges=70, seed=seed + 50)
        slen = SLenMatrix.from_graph(graph, horizon=3)
        working = graph.copy()
        for update in _random_update_sequence(graph.copy(), 10, seed + 50):
            update.apply(working)
            update_slen(slen, working, update)
        reference = SLenMatrix.from_graph(working, horizon=3)
        assert slen == reference


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    edge_count=st.integers(min_value=10, max_value=60),
)
def test_single_edge_insert_then_delete_roundtrip(seed, edge_count):
    """Property: inserting then deleting the same edge restores the matrix."""
    graph = make_random_graph(num_nodes=18, num_edges=edge_count, seed=seed)
    slen = SLenMatrix.from_graph(graph)
    original = slen.copy()
    rng = random.Random(seed)
    nodes = sorted(graph.nodes(), key=repr)
    source, target = rng.sample(nodes, 2)
    if graph.has_edge(source, target):
        return
    insertion = insert_data_edge(source, target)
    insertion.apply(graph)
    update_slen(slen, graph, insertion)
    deletion = delete_data_edge(source, target)
    deletion.apply(graph)
    update_slen(slen, graph, deletion)
    assert slen == original
    assert slen == SLenMatrix.from_graph(graph)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_affected_nodes_cover_changed_pairs(seed):
    """Property: Aff_N contains both endpoints of every changed pair."""
    graph = make_random_graph(num_nodes=16, num_edges=40, seed=seed)
    slen = SLenMatrix.from_graph(graph)
    rng = random.Random(seed)
    edges = sorted(graph.edges(), key=repr)
    if not edges:
        return
    source, target = rng.choice(edges)
    deletion = delete_data_edge(source, target)
    deletion.apply(graph)
    delta = update_slen(slen, graph, deletion)
    for x, y in delta.changed_pairs:
        assert x in delta.affected_nodes
        assert y in delta.affected_nodes
    for (_x, _y), (old, new) in delta.changed_pairs.items():
        assert old != new
        assert old < new or new == INF
