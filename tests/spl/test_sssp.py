"""Tests for single-source traversals (BFS and Dijkstra)."""

import pytest

from repro.graph.errors import MissingNodeError
from repro.spl.sssp import bfs_lengths, bfs_lengths_within, dijkstra_lengths
from tests.conftest import make_random_graph

networkx = pytest.importorskip("networkx")


def _to_networkx(graph):
    nx_graph = networkx.DiGraph()
    nx_graph.add_nodes_from(graph.nodes())
    nx_graph.add_edges_from(graph.edges())
    return nx_graph


class TestBFS:
    def test_simple_chain(self, figure1_data):
        lengths = bfs_lengths(figure1_data, "PM1")
        assert lengths["PM1"] == 0
        assert lengths["SE2"] == 1
        assert lengths["PM2"] == 3
        assert "TE2" not in lengths

    def test_reverse(self, figure1_data):
        lengths = bfs_lengths(figure1_data, "S1", reverse=True)
        assert lengths["TE2"] == 1
        assert lengths["PM1"] == 3

    def test_missing_source(self, figure1_data):
        with pytest.raises(MissingNodeError):
            bfs_lengths(figure1_data, "nope")

    @pytest.mark.parametrize("seed", range(5))
    def test_matches_networkx(self, seed):
        graph = make_random_graph(seed=seed)
        nx_graph = _to_networkx(graph)
        for source in list(graph.nodes())[:5]:
            expected = networkx.single_source_shortest_path_length(nx_graph, source)
            assert bfs_lengths(graph, source) == dict(expected)


class TestBoundedBFS:
    def test_truncation(self, figure1_data):
        within = bfs_lengths_within(figure1_data, "PM1", 2)
        full = bfs_lengths(figure1_data, "PM1")
        assert within == {node: dist for node, dist in full.items() if dist <= 2}

    def test_zero_depth(self, figure1_data):
        assert bfs_lengths_within(figure1_data, "PM1", 0) == {"PM1": 0}

    def test_negative_depth_rejected(self, figure1_data):
        with pytest.raises(ValueError):
            bfs_lengths_within(figure1_data, "PM1", -1)


class TestDijkstra:
    @pytest.mark.parametrize("seed", range(3))
    def test_unit_weights_match_bfs(self, seed):
        graph = make_random_graph(seed=seed)
        source = next(iter(graph.nodes()))
        bfs = bfs_lengths(graph, source)
        dijkstra = dijkstra_lengths(graph, source)
        assert {node: int(dist) for node, dist in dijkstra.items()} == bfs

    def test_custom_weights(self, figure1_data):
        lengths = dijkstra_lengths(figure1_data, "PM1", weight=lambda u, v: 2.0)
        assert lengths["SE2"] == 2.0
        assert lengths["PM2"] == 6.0

    def test_negative_weight_rejected(self, figure1_data):
        with pytest.raises(ValueError):
            dijkstra_lengths(figure1_data, "PM1", weight=lambda u, v: -1.0)

    def test_missing_source(self, figure1_data):
        with pytest.raises(MissingNodeError):
            dijkstra_lengths(figure1_data, "nope")
