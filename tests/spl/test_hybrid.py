"""Tests for the Hybrid (ELL+COO) storage of the SLen matrix."""

import pytest

from repro.spl.hybrid import HybridMatrix
from repro.spl.matrix import INF, SLenMatrix
from tests.conftest import make_random_graph


@pytest.fixture
def slen() -> SLenMatrix:
    return SLenMatrix.from_graph(make_random_graph(seed=7))


class TestRoundTrip:
    @pytest.mark.parametrize("k", [None, 0, 1, 5, 100])
    def test_distances_preserved(self, slen, k):
        hybrid = HybridMatrix(slen, k=k)
        for source in slen.nodes():
            for target in slen.nodes():
                assert hybrid.distance(source, target) == slen.distance(source, target)

    def test_to_slen_roundtrip(self, slen):
        assert HybridMatrix(slen, k=3).to_slen() == slen

    def test_rows_match(self, slen):
        hybrid = HybridMatrix(slen, k=2)
        for source in slen.nodes():
            assert hybrid.row(source) == slen.row(source)

    def test_finite_entries_count(self, slen):
        hybrid = HybridMatrix(slen)
        assert sum(1 for _ in hybrid.finite_entries()) == slen.number_of_finite_entries


class TestSpaceAccounting:
    def test_cell_counts(self, slen):
        hybrid = HybridMatrix(slen, k=1)
        assert hybrid.k == 1
        assert hybrid.ell_cells == 2 * len(slen.nodes())
        assert hybrid.coo_cells == 3 * (slen.number_of_finite_entries - sum(
            min(1, len(slen.row(node))) for node in slen.nodes()
        ))
        assert hybrid.dense_cells == len(slen.nodes()) ** 2

    def test_compression_better_than_dense_on_sparse_matrix(self):
        # A long path graph has a very sparse reachability structure.
        from repro.graph.digraph import DataGraph

        graph = DataGraph({f"n{i}": "X" for i in range(60)})
        for i in range(59):
            graph.add_edge(f"n{i}", f"n{i+1}")
        # Bound the horizon so the matrix stays sparse, as the paper's remark assumes.
        slen = SLenMatrix.from_graph(graph, horizon=3)
        hybrid = HybridMatrix(slen)
        assert hybrid.compression_ratio < 1.0

    def test_negative_k_rejected(self, slen):
        with pytest.raises(ValueError):
            HybridMatrix(slen, k=-1)

    def test_missing_node(self, slen):
        from repro.graph.errors import MissingNodeError

        hybrid = HybridMatrix(slen)
        with pytest.raises(MissingNodeError):
            hybrid.distance("nope", "nope")

    def test_zero_width_ell_still_answers_lookups(self, slen):
        hybrid = HybridMatrix(slen, k=0)
        nodes = sorted(slen.nodes(), key=repr)
        # With k=0 everything overflows to the COO part but lookups still work.
        assert hybrid.distance(nodes[0], nodes[0]) == 0
        unreachable = [
            (s, t) for s in nodes for t in nodes if slen.distance(s, t) == INF
        ]
        if unreachable:
            source, target = unreachable[0]
            assert hybrid.distance(source, target) == INF


def test_empty_matrix():
    hybrid = HybridMatrix(SLenMatrix())
    assert hybrid.compression_ratio == 0.0
    assert list(hybrid.finite_entries()) == []
