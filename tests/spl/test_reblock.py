"""Regression: ``to_backend`` / ``from_rows`` must honour dense_block_size.

``to_backend`` used to return a plain copy whenever the requested
backend matched the current one — silently ignoring a *different*
requested ``dense_block_size``.  ``from_rows`` used to drop the knob
entirely, so the partition layer could never propagate it.
"""

from repro.graph import DataGraph
from repro.spl.matrix import SLenMatrix


def ring_graph(num_nodes: int = 12) -> DataGraph:
    data = DataGraph()
    for i in range(num_nodes):
        data.add_node(f"n{i}", "L")
    for i in range(num_nodes):
        data.add_edge(f"n{i}", f"n{(i + 1) % num_nodes}")
    return data


def test_to_backend_reblocks_when_block_size_differs():
    matrix = SLenMatrix.from_graph(ring_graph(), backend="dense", dense_block_size=8)
    assert getattr(matrix._backend, "block_size") == 8

    reblocked = matrix.to_backend("dense", dense_block_size=4)
    assert getattr(reblocked._backend, "block_size") == 4
    assert reblocked == matrix  # distances preserved across re-blocking
    # The original is untouched.
    assert getattr(matrix._backend, "block_size") == 8


def test_to_backend_same_block_size_still_copies():
    matrix = SLenMatrix.from_graph(ring_graph(), backend="dense", dense_block_size=8)
    copy = matrix.to_backend("dense", dense_block_size=8)
    assert copy == matrix
    assert copy is not matrix
    assert getattr(copy._backend, "block_size") == 8


def test_to_backend_without_block_size_keeps_fast_copy_path():
    matrix = SLenMatrix.from_graph(ring_graph(), backend="dense", dense_block_size=8)
    copy = matrix.to_backend("dense")
    assert copy == matrix
    assert getattr(copy._backend, "block_size") == 8


def test_from_rows_propagates_dense_block_size():
    source = SLenMatrix.from_graph(ring_graph())
    rows = {node: dict(source.row(node)) for node in source.nodes()}
    rebuilt = SLenMatrix.from_rows(
        source.nodes(), rows, backend="dense", dense_block_size=4
    )
    assert getattr(rebuilt._backend, "block_size") == 4
    assert rebuilt == source


def test_build_slen_partitioned_honours_dense_block_size():
    from repro.partition.label_partition import LabelPartition
    from repro.partition.partitioned_spl import build_slen_partitioned

    graph = ring_graph()
    partition = LabelPartition.from_graph(graph)
    matrix = build_slen_partitioned(
        graph, partition, backend="dense", dense_block_size=4
    )
    assert getattr(matrix._backend, "block_size") == 4
    assert matrix == SLenMatrix.from_graph(graph)
