"""Shared fixtures: the paper's running example and small synthetic graphs."""

from __future__ import annotations

import random

import pytest

from repro import paper_example
from repro.graph.digraph import DataGraph
from repro.graph.pattern import PatternGraph
from repro.spl.matrix import SLenMatrix


@pytest.fixture
def figure1_data() -> DataGraph:
    """The Figure 1(a) data graph."""
    return paper_example.figure1_data_graph()


@pytest.fixture
def figure1_pattern() -> PatternGraph:
    """The Figure 1(b) pattern graph."""
    return paper_example.figure1_pattern_graph()


@pytest.fixture
def figure1_slen(figure1_data) -> SLenMatrix:
    """The SLen matrix of the Figure 1 data graph (Table III)."""
    return SLenMatrix.from_graph(figure1_data)


@pytest.fixture
def figure4_data() -> DataGraph:
    """The Figure 4(a) data graph used by the partition examples."""
    return paper_example.figure4_data_graph()


def make_random_graph(
    num_nodes: int = 30,
    num_edges: int = 90,
    labels: tuple[str, ...] = ("A", "B", "C", "D"),
    seed: int = 0,
) -> DataGraph:
    """Small deterministic random labelled digraph for property-style tests."""
    rng = random.Random(seed)
    graph = DataGraph()
    nodes = [f"n{i}" for i in range(num_nodes)]
    for node in nodes:
        graph.add_node(node, rng.choice(labels))
    attempts = 0
    while graph.number_of_edges < num_edges and attempts < num_edges * 20:
        attempts += 1
        source, target = rng.sample(nodes, 2)
        if not graph.has_edge(source, target):
            graph.add_edge(source, target)
    return graph


def make_random_pattern(
    num_nodes: int = 4,
    num_edges: int = 5,
    labels: tuple[str, ...] = ("A", "B", "C", "D"),
    seed: int = 0,
    max_bound: int = 3,
) -> PatternGraph:
    """Small deterministic random pattern for property-style tests."""
    rng = random.Random(seed)
    pattern = PatternGraph()
    nodes = [f"q{i}" for i in range(num_nodes)]
    for node in nodes:
        pattern.add_node(node, rng.choice(labels))
    for position in range(1, num_nodes):
        anchor = nodes[rng.randrange(position)]
        pattern.add_edge(anchor, nodes[position], rng.randint(1, max_bound))
    attempts = 0
    while pattern.number_of_edges < num_edges and attempts < num_edges * 20:
        attempts += 1
        source, target = rng.sample(nodes, 2)
        if not pattern.has_edge(source, target):
            pattern.add_edge(source, target, rng.randint(1, max_bound))
    return pattern


@pytest.fixture
def random_graph() -> DataGraph:
    """A 30-node random labelled graph."""
    return make_random_graph()


@pytest.fixture
def random_pattern() -> PatternGraph:
    """A 4-node random pattern over the same label set."""
    return make_random_pattern()
