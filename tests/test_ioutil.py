"""ioutil durability primitives: atomic replace and durable append."""

import os

import pytest

from repro.ioutil import append_line_durable, atomic_write_text, fsync_directory


def test_atomic_write_text_creates_and_replaces(tmp_path):
    target = tmp_path / "artifact.json"
    atomic_write_text(target, "first")
    assert target.read_text() == "first"
    atomic_write_text(target, "second")
    assert target.read_text() == "second"
    # No temporary droppings left behind.
    assert [p.name for p in tmp_path.iterdir()] == ["artifact.json"]


def test_atomic_write_text_failure_leaves_target_untouched(tmp_path, monkeypatch):
    target = tmp_path / "artifact.json"
    atomic_write_text(target, "good")

    def exploding_replace(src, dst):
        raise OSError("simulated rename failure")

    monkeypatch.setattr(os, "replace", exploding_replace)
    with pytest.raises(OSError):
        atomic_write_text(target, "bad")
    monkeypatch.undo()
    assert target.read_text() == "good"
    # The temp file was cleaned up even on the failure path.
    assert [p.name for p in tmp_path.iterdir()] == ["artifact.json"]


def test_append_line_durable_appends_and_terminates_lines(tmp_path):
    target = tmp_path / "log.jsonl"
    append_line_durable(target, "one")
    append_line_durable(target, "two\n")  # explicit newline is not doubled
    append_line_durable(target, "three")
    assert target.read_text() == "one\ntwo\nthree\n"


def test_append_line_durable_creates_the_file(tmp_path):
    target = tmp_path / "sub" / "log.jsonl"
    target.parent.mkdir()
    assert not target.exists()
    append_line_durable(target, "hello")
    assert target.read_text() == "hello\n"


def test_fsync_directory_tolerates_missing_path(tmp_path):
    # A best-effort primitive: a vanished directory must not raise.
    fsync_directory(tmp_path / "never-created")
    fsync_directory(tmp_path)
