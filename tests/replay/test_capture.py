"""Live capture hooks (``start_capture`` / ``stop_capture``).

A capture journal must be indistinguishable from a journal-from-birth
as a replay source: snapshot base of the settled state, buffered tail
as the first delta record, every subsequent payload journaled, and a
faithful replay of its window reproducing the live session exactly.
"""

import json

import pytest

from repro.replay import ReplayLog, replay
from repro.service import ServiceConfig, ServiceError, StreamingUpdateService
from repro.workloads.update_gen import generate_payload_stream

from tests.replay.conftest import (
    EAGER,
    QUIET,
    make_graph,
    make_pattern,
    observed_matches,
    run,
)


async def start_service(config_kwargs, *, patterns=("alpha",)):
    graph = make_graph()
    service = StreamingUpdateService(ServiceConfig(**config_kwargs))
    await service.register("g", graph)
    labels = {"alpha": ("A", "B"), "beta": ("B", "C")}
    for pattern_id in patterns:
        await service.subscribe("g", pattern_id, make_pattern(*labels[pattern_id]))
    return service, graph


def payloads_for(graph, count, *, seed=31):
    return list(
        generate_payload_stream(graph, payloads=count, updates_per_payload=4, seed=seed)
    )


# ----------------------------------------------------------------------
# Lifecycle guards
# ----------------------------------------------------------------------
def test_start_capture_refuses_an_already_journaled_graph(tmp_path):
    async def scenario():
        service, _ = await start_service(
            dict(journal_dir=str(tmp_path / "wal"), **EAGER)
        )
        try:
            with pytest.raises(ServiceError, match="already journaled"):
                await service.start_capture("g", tmp_path / "capture")
        finally:
            await service.close()

    run(scenario())


def test_stop_capture_without_a_journal_refuses(tmp_path):
    async def scenario():
        service, _ = await start_service(dict(**EAGER))
        try:
            with pytest.raises(ServiceError, match="no journal to stop"):
                await service.stop_capture("g")
        finally:
            await service.close()

    run(scenario())


# ----------------------------------------------------------------------
# The captured file
# ----------------------------------------------------------------------
def test_capture_snapshots_settled_state_and_buffers_the_tail(tmp_path):
    async def scenario():
        # QUIET: nothing settles on its own, so pre-capture payloads sit
        # in the buffer when capture starts.
        service, graph = await start_service(dict(**QUIET))
        payloads = payloads_for(graph, 6)
        for payload in payloads[:2]:
            receipt = await service.submit("g", payload)
            assert receipt.rejected == 0
        info = await service.start_capture("g", tmp_path)
        # Settled state is still the registered graph (version 0, no
        # journaled seqs yet); the buffer became one delta record.
        assert info["base_seq"] == 0
        assert info["last_seq"] == 1
        for payload in payloads[2:]:
            await service.submit("g", payload)
        await service.drain()
        await service.close()

        lines = [json.loads(line) for line in open(info["path"])]
        assert lines[0]["t"] == "snapshot"
        assert lines[0]["seq"] == 0
        assert lines[0]["version"] == 0
        assert [doc["pattern_id"] for doc in lines[0]["subscriptions"]] == ["alpha"]
        # First delta record carries the whole pre-capture buffer.
        assert lines[1]["t"] == "delta"
        assert len(lines[1]["updates"]) == 2 * 4

    run(scenario())


def test_capture_journal_is_a_recovery_source(tmp_path):
    async def scenario():
        service, graph = await start_service(dict(**EAGER))
        for payload in payloads_for(graph, 5):
            await service.submit("g", payload)
        await service.start_capture("g", tmp_path)
        for payload in payloads_for(graph, 5, seed=77)[2:]:
            await service.submit("g", payload)
        await service.drain()
        live = {
            "matches": observed_matches(service, "g"),
            "version": service.snapshot("g").version,
        }
        await service.close()  # "crash" after the last fsync

        # A fresh service pointed at the capture directory recovers the
        # captured graph — journal-from-birth and capture are the same
        # format.
        recovered = StreamingUpdateService(
            ServiceConfig(journal_dir=str(tmp_path), **EAGER)
        )
        snapshot = await recovered.register("g", make_graph())
        assert observed_matches(recovered, "g") == live["matches"]
        assert snapshot.version >= live["version"]
        await recovered.close()

    run(scenario())


def test_stopped_capture_leaves_the_file_immutable(tmp_path):
    async def scenario():
        service, graph = await start_service(dict(**EAGER))
        stream = payloads_for(graph, 6)
        await service.start_capture("g", tmp_path)
        for payload in stream[:3]:
            await service.submit("g", payload)
        await service.drain()
        info = await service.stop_capture("g")
        frozen = open(info["path"], "rb").read()
        # Post-stop traffic is accepted but no longer journaled.
        for payload in stream[3:]:
            receipt = await service.submit("g", payload)
            assert receipt.rejected == 0
        await service.drain()
        assert open(info["path"], "rb").read() == frozen
        assert info["last_seq"] == 3
        assert info["checkpoint_seq"] == 3
        await service.close()

    run(scenario())


# ----------------------------------------------------------------------
# Replay of a captured window matches the live session
# ----------------------------------------------------------------------
def test_replay_of_a_captured_window_matches_live(tmp_path):
    async def scenario():
        service, graph = await start_service(dict(**EAGER), patterns=("alpha", "beta"))
        pre = payloads_for(graph, 4)
        for payload in pre:
            await service.submit("g", payload)
        await service.drain()
        await service.start_capture("g", tmp_path)
        # Fresh generator seeded from the *current* graph so mid-stream
        # inserts/deletes stay valid.
        post = list(
            generate_payload_stream(
                service.snapshot("g").data.copy(),
                payloads=8,
                updates_per_payload=4,
                seed=59,
            )
        )
        for payload in post:
            receipt = await service.submit("g", payload)
            assert receipt.rejected == 0
        await service.drain()
        live = {
            "matches": observed_matches(service, "g"),
            "version": service.snapshot("g").version,
            "history": service.graph_history("g").canonical_doc(),
        }
        await service.close()

        window = ReplayLog(tmp_path / "g.journal.jsonl").window()
        assert window.warmup_deltas == 0  # capture journals self-base
        assert window.delta_count == 8
        assert sorted(d["pattern_id"] for d in window.subscriptions) == [
            "alpha",
            "beta",
        ]
        result = await replay(window)
        assert {
            pid: {u: list(vs) for u, vs in per.items()}
            for pid, per in result.final.as_of[0].items()
        } == live["matches"]
        # Capture bases replay versioning at the captured version.
        assert result.final.version == live["version"] - window.base_version
        # Lifetime stamps restart at the capture base (the live run's
        # pre-capture history is inside the snapshot, not the stream),
        # so vs-live they are offset — but across replays of the same
        # captured window they are deterministic and comparable.
        assert result.final.history != live["history"]
        again = await replay(window, slen_backend="dense")
        assert again.final.history == result.final.history

    run(scenario())
