"""Window reconstruction from journal files (``repro.replay.log``).

These tests parse journals written by real service sessions (via the
``recording`` fixture) and by :class:`GraphJournal` directly, and check
that :class:`ReplayLog` rebuilds the exact delta stream — warmup folding,
settle-group bounding in *sequence* order, snapshot-base awareness, and
loud refusal of unreconstructable windows.
"""

import json

import pytest

from repro.graph.updates import EdgeInsertion, GraphKind
from repro.replay import ReplayError, ReplayLog
from repro.service.journal import GraphJournal, JournalError

from tests.replay.conftest import make_graph


def edge(source: str, target: str) -> EdgeInsertion:
    return EdgeInsertion(graph=GraphKind.DATA, source=source, target=target)


# ----------------------------------------------------------------------
# Parsing a real recorded session
# ----------------------------------------------------------------------
def test_parses_a_recorded_session(recording):
    log = ReplayLog(recording["path"])
    # Pre-compaction journal: no snapshot base, seqs start at 1.
    assert log.base_graph is None
    assert log.base_seq == 0
    # 2 initial subscribes + 12 deltas + 1 unsubscribe + 1 subscribe.
    assert log.last_seq == 16
    assert not log.torn_tail
    kinds = [record.kind for record in log.records]
    assert kinds.count("delta") == 12
    assert kinds.count("checkpoint") == 12  # EAGER: one settle per payload
    assert kinds.count("subscribe") == 3
    assert kinds.count("unsubscribe") == 1


def test_discover_finds_journals_by_slug(tmp_path, recording):
    found = ReplayLog.discover(recording["path"].parent)
    assert found == {"g": recording["path"]}
    assert ReplayLog.discover(tmp_path / "nowhere") == {}


def test_full_window_reproduces_the_stream(recording):
    window = ReplayLog(recording["path"]).window(base_graph=recording["graph"])
    assert window.from_seq == 1
    assert window.to_seq == 16
    assert window.delta_count == 12
    assert window.warmup_deltas == 0
    assert len(window.checkpoints) == 12
    # Registry at window start is empty: the subscribes are stream
    # records (they happened inside the window).
    assert window.subscriptions == ()
    groups = window.settle_groups()
    assert len(groups) == 12  # every checkpoint closes a group, no tail
    # First group carries the two initial subscribe records.
    assert [r.kind for r in groups[0].operations] == ["subscribe", "subscribe", "delta"]
    # The mid-stream control records ride in the group of the next delta.
    mid = next(
        g for g in groups if any(r.kind == "unsubscribe" for r in g.operations)
    )
    assert [r.kind for r in mid.operations] == ["unsubscribe", "subscribe", "delta"]


def test_sub_window_folds_the_prefix_into_the_base(recording):
    log = ReplayLog(recording["path"])
    full = log.window(base_graph=recording["graph"])
    window = log.window(from_seq=9, base_graph=recording["graph"])
    # Seqs 1-2 are the subscribes, 3-8 the first six deltas.
    assert window.warmup_deltas == 6
    assert window.delta_count == 6
    # The warmed-up base differs from the registered graph: the prefix
    # deltas were applied to it.
    assert window.base_graph.number_of_edges != recording["graph"].number_of_edges
    # The pre-window subscribes fold into the starting registry.
    assert sorted(doc["pattern_id"] for doc in window.subscriptions) == ["alpha", "beta"]
    # Prefix + suffix deltas account for the whole stream.
    assert window.warmup_deltas + window.delta_count == full.delta_count


def test_sub_window_honours_to_seq(recording):
    window = ReplayLog(recording["path"]).window(
        to_seq=9, base_graph=recording["graph"]
    )
    assert window.delta_count == 7  # seqs 3..9
    assert all(record.seq <= 9 for record in window.entries)
    # Post-window control records (seqs 10-11) are dropped, not folded.
    assert window.subscriptions == ()


# ----------------------------------------------------------------------
# Settle-group bounding is by sequence, not file order
# ----------------------------------------------------------------------
def test_checkpoint_bounds_by_seq_even_when_file_order_interleaves(tmp_path):
    journal = GraphJournal(tmp_path / "g.journal.jsonl")
    journal.initialize(make_graph(num_nodes=6, num_edges=4))
    seq_a = journal.append_delta([edge("n0", "n1")])
    seq_b = journal.append_delta([edge("n1", "n2")])
    # Settles run concurrently with ingestion: the checkpoint covering
    # seq_a lands in the file *after* the delta at seq_b.
    journal.checkpoint(seq_a, 1, 1)
    journal.checkpoint(seq_b, 2, 2)
    journal.close()

    groups = ReplayLog(tmp_path / "g.journal.jsonl").window().settle_groups()
    assert len(groups) == 2
    assert [r.seq for r in groups[0].operations] == [seq_a]
    assert groups[0].boundary.seq == seq_a
    assert [r.seq for r in groups[1].operations] == [seq_b]
    assert groups[1].boundary.seq == seq_b


def test_trailing_records_form_a_boundaryless_tail_group(tmp_path):
    journal = GraphJournal(tmp_path / "g.journal.jsonl")
    journal.initialize(make_graph(num_nodes=6, num_edges=4))
    seq_a = journal.append_delta([edge("n0", "n1")])
    journal.checkpoint(seq_a, 1, 1)
    journal.append_delta([edge("n1", "n2")])  # crash before its settle
    journal.close()

    groups = ReplayLog(tmp_path / "g.journal.jsonl").window().settle_groups()
    assert len(groups) == 2
    assert groups[0].boundary is not None
    assert groups[1].boundary is None
    assert groups[1].delta_count == 1


# ----------------------------------------------------------------------
# Snapshot-base awareness
# ----------------------------------------------------------------------
def test_compacted_journal_carries_its_own_base(tmp_path):
    graph = make_graph(num_nodes=6, num_edges=4)
    journal = GraphJournal(tmp_path / "g.journal.jsonl")
    journal.initialize(
        graph,
        seq=5,
        version=3,
        subscriptions=[{"pattern_id": "p", "k": 2, "pattern": {"nodes": [], "edges": []}}],
    )
    seq = journal.append_delta([edge("n0", "n1")])
    journal.checkpoint(seq, 4, 1)
    journal.close()

    log = ReplayLog(tmp_path / "g.journal.jsonl")
    assert log.base_seq == 5
    assert log.base_version == 3
    # No base_graph argument needed: the snapshot record supplies it.
    window = log.window()
    assert window.from_seq == 6
    assert window.base_version == 3
    assert window.base_graph.number_of_nodes == graph.number_of_nodes
    assert [doc["pattern_id"] for doc in window.subscriptions] == ["p"]


def test_window_into_the_snapshot_is_refused(tmp_path):
    journal = GraphJournal(tmp_path / "g.journal.jsonl")
    journal.initialize(make_graph(num_nodes=6, num_edges=4), seq=5, version=3)
    journal.append_delta([edge("n0", "n1")])
    journal.close()

    log = ReplayLog(tmp_path / "g.journal.jsonl")
    with pytest.raises(ReplayError, match="inside the compaction snapshot"):
        log.window(from_seq=3)


def test_missing_base_is_refused_with_direction(recording):
    log = ReplayLog(recording["path"])
    with pytest.raises(ReplayError, match="no snapshot base"):
        log.window()


def test_inverted_window_is_refused(recording):
    log = ReplayLog(recording["path"])
    with pytest.raises(ReplayError, match="empty window"):
        log.window(from_seq=8, to_seq=4, base_graph=recording["graph"])


def test_missing_file_is_refused(tmp_path):
    with pytest.raises(ReplayError, match="does not exist"):
        ReplayLog(tmp_path / "absent.journal.jsonl")


# ----------------------------------------------------------------------
# Degraded files
# ----------------------------------------------------------------------
def test_torn_tail_is_ignored_and_flagged(recording):
    path = recording["path"]
    data = path.read_bytes()
    path.write_bytes(data[: len(data) - 7])  # crash mid-append

    log = ReplayLog(path)
    assert log.torn_tail
    window = log.window(base_graph=recording["graph"])
    assert window.torn_tail
    # The stream lost exactly the torn record; the file is untouched.
    assert path.read_bytes() == data[: len(data) - 7]


def test_interior_corruption_raises_with_line_number(tmp_path, recording):
    path = recording["path"]
    lines = path.read_text().splitlines()
    lines[3] = json.dumps({"t": "delta", "seq": "not-an-int"})
    path.write_text("\n".join(lines) + "\n")
    with pytest.raises(JournalError, match="line 4"):
        ReplayLog(path)


def test_recovered_journal_drops_duplicate_deltas(tmp_path):
    # A crash-recovered service re-appends deltas it already journaled;
    # the reader keeps the first copy only.
    journal = GraphJournal(tmp_path / "g.journal.jsonl")
    journal.initialize(make_graph(num_nodes=6, num_edges=4))
    journal.append_delta([edge("n0", "n1")])
    journal.close()
    record = json.loads(
        (tmp_path / "g.journal.jsonl").read_text().splitlines()[1]
    )
    with open(tmp_path / "g.journal.jsonl", "a") as handle:
        handle.write(json.dumps(record) + "\n")

    log = ReplayLog(tmp_path / "g.journal.jsonl")
    assert log.dropped_duplicates == 1
    assert log.window().delta_count == 1


def test_describe_is_json_able(recording):
    window = ReplayLog(recording["path"]).window(base_graph=recording["graph"])
    doc = window.describe()
    assert json.dumps(doc)  # no sets/tuples/objects leak through
    assert doc["deltas"] == 12
    assert doc["checkpoints"] == 12
    assert doc["warmup_deltas"] == 0
