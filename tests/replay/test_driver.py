"""Re-running windows through a fresh service (``repro.replay.driver``).

The central claim under test: a faithful replay of a recorded window is
an *oracle* — it reproduces the live run's observable outcome (match
sets, graph content, version, settle count, lifetime stamps) exactly,
and keeps doing so under configuration overrides.
"""

import json

import pytest

from repro.graph.io import pattern_graph_to_dict
from repro.graph.updates import (
    EdgeDeletion,
    EdgeInsertion,
    GraphKind,
    NodeDeletion,
    NodeInsertion,
)
from repro.replay import (
    MODE_READMIT,
    ReplayError,
    ReplayLog,
    payload_doc,
    replay,
)
from repro.service.delta import UpdateData

from tests.replay.conftest import make_pattern, run


def window_of(recording):
    return ReplayLog(recording["path"]).window(base_graph=recording["graph"])


# ----------------------------------------------------------------------
# Faithful replay is the oracle
# ----------------------------------------------------------------------
def test_faithful_replay_reproduces_the_live_run(recording):
    outcome = recording["outcome"]
    result = run(replay(window_of(recording)))
    # One observation per recorded checkpoint, aligned one-to-one.
    assert len(result.settles) == len(window_of(recording).checkpoints)
    assert result.settle_count == outcome["settles"]
    assert result.updates_accepted == outcome["accepted"]
    assert result.updates_rejected == 0
    final = result.final
    assert final.version == outcome["version"]
    assert list(final.nodes) == outcome["nodes"]
    assert [tuple(edge) for edge in final.edges] == outcome["edges"]
    assert final.history == outcome["history"]
    # Latest matches (as_of offset 0) equal the live run's match sets.
    latest = {
        pid: {u: list(vs) for u, vs in per.items()}
        for pid, per in final.as_of[0].items()
    }
    assert latest == outcome["matches"]


def test_settle_observations_track_recorded_checkpoints(recording):
    window = window_of(recording)
    result = run(replay(window))
    boundaries = window.checkpoints
    for observation, checkpoint in zip(result.settles, boundaries):
        assert observation.recorded_seq == checkpoint.seq
        # Faithful replay also reproduces the recorded version stamps.
        assert observation.version == checkpoint.version
    # The mid-stream control records took effect: gamma appears, beta
    # disappears between the 7th and 8th settles.
    assert sorted(result.settles[6].matches) == ["alpha", "beta"]
    assert sorted(result.settles[7].matches) == ["alpha", "gamma"]


def test_faithful_replay_is_reproducible(recording):
    window = window_of(recording)
    first = run(replay(window))
    second = run(replay(window))
    assert first.as_dict()["settles"] == second.as_dict()["settles"]
    assert first.as_dict()["final"] == second.as_dict()["final"]


def test_readmit_mode_reaches_the_same_final_state(recording):
    outcome = recording["outcome"]
    result = run(replay(window_of(recording), mode=MODE_READMIT))
    # Boundaries are the replayed config's own: no aligned settles.
    assert result.settles == ()
    assert list(result.final.nodes) == outcome["nodes"]
    assert result.final.history == outcome["history"]


def test_unknown_mode_is_refused(recording):
    with pytest.raises(ReplayError, match="unknown replay mode"):
        run(replay(window_of(recording), mode="speculative"))


# ----------------------------------------------------------------------
# Overrides
# ----------------------------------------------------------------------
def test_subscription_override_replaces_the_recorded_registry(recording):
    doc = {
        "pattern_id": "delta",
        "k": 2,
        "pattern": pattern_graph_to_dict(make_pattern("D", "A", bound=3)),
    }
    # Start past the initial subscribe records so the recorded registry
    # (alpha, beta) is window state the override can replace.
    window = ReplayLog(recording["path"]).window(
        from_seq=3, base_graph=recording["graph"]
    )
    assert sorted(d["pattern_id"] for d in window.subscriptions) == ["alpha", "beta"]
    result = run(replay(window, subscriptions=[doc]))
    assert result.overrides["subscriptions"] == "override"
    # The recorded control records still apply on top of the override:
    # gamma subscribes mid-window, beta's unsubscribe is a no-op here.
    assert sorted(result.final.as_of[0]) == ["delta", "gamma"]


def test_overrides_are_recorded_on_the_run(recording):
    result = run(
        replay(window_of(recording), slen_backend="dense", batch_plan="coalesced")
    )
    assert result.overrides["slen_backend"] == "dense"
    assert result.overrides["batch_plan"] == "coalesced"
    assert result.overrides["mode"] == "faithful"


def test_run_record_is_json_able(recording):
    result = run(replay(window_of(recording)))
    doc = json.dumps(result.as_dict())
    assert "settles" in doc
    assert result.throughput > 0


# ----------------------------------------------------------------------
# Payload round-trip
# ----------------------------------------------------------------------
def test_payload_doc_round_trips_through_ingestion():
    updates = (
        EdgeDeletion(graph=GraphKind.DATA, source="a", target="b"),
        NodeDeletion(graph=GraphKind.DATA, node="c", labels=("C",), edges=()),
        EdgeInsertion(graph=GraphKind.DATA, source="b", target="a"),
        NodeInsertion(
            graph=GraphKind.DATA, node="d", labels=("D",), edges=(("a", "d"),)
        ),
    )
    doc = payload_doc(updates)
    assert [entry["type"] for entry in doc["deletes"]] == ["edge", "node"]
    assert [entry["type"] for entry in doc["inserts"]] == ["edge", "node"]
    # UpdateData lowers deletes-first in recorded order: the exact
    # update sequence the journal held comes back out.
    lowered = UpdateData(doc).updates()
    assert tuple(lowered) == updates


def test_payload_doc_refuses_unknown_updates():
    with pytest.raises(ReplayError, match="cannot replay"):
        payload_doc([object()])
