"""Differential verification (``repro.replay.verify``).

Covers the clean path — every override of a deterministic window
verifies with zero mismatches — and the dirty path: tampered run
records must surface as typed mismatches, not pass silently.
"""

import dataclasses
import json

import pytest

from repro.replay import (
    MODE_READMIT,
    ReplayLog,
    ReplayVerifier,
    replay,
    verify_window,
)
from repro.replay.verify import MAX_DETAIL_CHARS, Mismatch

from tests.replay.conftest import run


@pytest.fixture
def window(recording):
    return ReplayLog(recording["path"]).window(base_graph=recording["graph"])


@pytest.fixture
def reference(window):
    return run(replay(window))


# ----------------------------------------------------------------------
# Clean path
# ----------------------------------------------------------------------
def test_default_sweep_verifies_clean(window):
    reference, outcomes = run(
        verify_window(
            window,
            [
                {"slen_backend": "dense"},
                {"batch_plan": "per-update"},
                {"batch_plan": "coalesced"},
                {"batch_plan": "partitioned"},
                {"mode": MODE_READMIT},
            ],
        )
    )
    assert reference.mode == "faithful"
    assert len(outcomes) == 5
    for candidate, report in outcomes:
        assert report.ok, f"{candidate.overrides}: {report.summary()}"
    # Faithful candidates compare settle-by-settle with real coverage.
    faithful_reports = [r for c, r in outcomes if c.mode == "faithful"]
    assert all(r.settles_compared == 12 for r in faithful_reports)
    assert all(r.patterns_compared > 0 for r in faithful_reports)
    assert all(r.slen_probes_compared > 0 for r in faithful_reports)
    assert all(r.as_of_versions_compared > 0 for r in faithful_reports)
    # The re-admitted candidate is final-state-only.
    readmit_report = next(r for c, r in outcomes if c.mode == MODE_READMIT)
    assert readmit_report.settles_compared == 0
    assert readmit_report.as_of_versions_compared == 0


def test_self_comparison_is_clean(reference):
    report = ReplayVerifier().compare(reference, reference)
    assert report.ok
    assert report.summary().startswith("OK")
    assert json.dumps(report.as_dict())


# ----------------------------------------------------------------------
# Dirty path — tampered runs must be caught
# ----------------------------------------------------------------------
def tampered_settle(reference, index, **changes):
    settles = list(reference.settles)
    settles[index] = dataclasses.replace(settles[index], **changes)
    return dataclasses.replace(reference, settles=tuple(settles))


def test_settle_match_divergence_is_caught(reference):
    bad = tampered_settle(
        reference, 4, matches={**reference.settles[4].matches, "alpha": {"u": ("nX",)}}
    )
    report = ReplayVerifier().compare(reference, bad)
    assert not report.ok
    assert any(m.kind == "settle.matches" for m in report.mismatches)
    assert any("settle 4" in m.location for m in report.mismatches)


def test_settle_version_and_size_divergence_is_caught(reference):
    bad = tampered_settle(
        reference, 0, version=99, node_count=reference.settles[0].node_count + 1
    )
    kinds = {m.kind for m in ReplayVerifier().compare(reference, bad).mismatches}
    assert "settle.version" in kinds
    assert "settle.nodes" in kinds


def test_slen_divergence_is_caught(reference):
    probe = reference.settles[2].slen[0]
    bad = tampered_settle(
        reference,
        2,
        slen=((probe[0], probe[1], (probe[2] or 0) + 1.0),)
        + reference.settles[2].slen[1:],
    )
    report = ReplayVerifier().compare(reference, bad)
    assert any(m.kind == "settle.slen" for m in report.mismatches)


def test_settle_count_divergence_short_circuits(reference):
    bad = dataclasses.replace(reference, settles=reference.settles[:-1])
    report = ReplayVerifier().compare(reference, bad)
    assert [m.kind for m in report.mismatches if m.kind.startswith("settle")] == [
        "settle.count"
    ]
    assert report.settles_compared == 0


def test_final_history_divergence_is_caught(reference):
    bad = dataclasses.replace(
        reference,
        final=dataclasses.replace(reference.final, history={"tampered": True}),
    )
    report = ReplayVerifier().compare(reference, bad)
    assert any(m.kind == "final.history" for m in report.mismatches)


def test_as_of_retention_divergence_is_caught(reference):
    # Candidate retained fewer versions than the reference: the sweep
    # must flag the missing offsets rather than skip them quietly.
    kept = {0: reference.final.as_of[0]}
    bad = dataclasses.replace(
        reference, final=dataclasses.replace(reference.final, as_of=kept)
    )
    report = ReplayVerifier().compare(reference, bad)
    assert any(m.kind == "final.as_of.retention" for m in report.mismatches)


def test_pattern_set_divergence_is_caught(reference):
    final = reference.final
    pruned = {
        offset: {pid: per for pid, per in patterns.items() if pid != "alpha"}
        for offset, patterns in final.as_of.items()
    }
    bad = dataclasses.replace(
        reference, final=dataclasses.replace(final, as_of=pruned)
    )
    report = ReplayVerifier().compare(reference, bad)
    assert any(m.kind.endswith(".patterns") for m in report.mismatches)


def test_mismatch_details_are_clipped():
    mismatch = Mismatch(
        kind="settle.matches",
        location="settle 0",
        expected="x" * (MAX_DETAIL_CHARS * 2),
        actual="y",
    )
    # Clipping happens at construction time in the verifier; the report
    # never carries unbounded reprs.
    from repro.replay.verify import _clip

    assert len(_clip("x" * (MAX_DETAIL_CHARS * 2))) == MAX_DETAIL_CHARS
    assert mismatch.describe().startswith("[settle.matches] settle 0")
