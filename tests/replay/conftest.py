"""Shared fixtures for the record/replay suite.

``record_session`` runs a real journaled multi-pattern service session —
deterministic payload stream, mid-stream subscribe/unsubscribe control
records, one settle per payload — and hands back the journal path plus
the live run's observable outcome, which the tests then treat as the
oracle a replay must reproduce.
"""

import asyncio
import random

import pytest

from repro.graph.digraph import DataGraph
from repro.graph.pattern import PatternGraph
from repro.service import ServiceConfig, StreamingUpdateService
from repro.workloads.update_gen import generate_payload_stream

#: One settle per payload (deadline 0), planner/capacity cuts disarmed.
EAGER = dict(deadline_seconds=0.0, max_buffer=10_000, coalesce_min_batch=10_000)
#: Nothing settles until an explicit drain.
QUIET = dict(deadline_seconds=30.0, max_buffer=10_000, coalesce_min_batch=10_000)

LABELS = ("A", "B", "C", "D")


def run(coro):
    return asyncio.run(coro)


def make_graph(num_nodes: int = 36, num_edges: int = 100, seed: int = 1) -> DataGraph:
    rng = random.Random(seed)
    graph = DataGraph()
    for index in range(num_nodes):
        graph.add_node(f"n{index}", rng.choice(LABELS))
    edges = set()
    while len(edges) < num_edges:
        source, target = rng.sample(range(num_nodes), 2)
        if (source, target) not in edges:
            edges.add((source, target))
            graph.add_edge(f"n{source}", f"n{target}")
    return graph


def make_pattern(source_label: str = "A", target_label: str = "B", bound: int = 2) -> PatternGraph:
    pattern = PatternGraph()
    pattern.add_node("u", source_label)
    pattern.add_node("v", target_label)
    pattern.add_edge("u", "v", bound)
    return pattern


def observed_matches(service: StreamingUpdateService, key: str, as_of=None) -> dict:
    """Normalized per-pattern match sets, the cross-run comparison form."""
    snapshot = service.snapshot(key, as_of=as_of)
    return {
        pattern_id: {
            str(u): sorted(str(v) for v in vs)
            for u, vs in snapshot.state_for(pattern_id).result.as_dict().items()
        }
        for pattern_id in snapshot.pattern_ids
    }


async def record_session(
    journal_dir,
    *,
    payloads: int = 12,
    updates_per_payload: int = 5,
    seed: int = 23,
    control_records: bool = True,
) -> dict:
    """Run one journaled session; returns the recording and its outcome."""
    graph = make_graph()
    service = StreamingUpdateService(ServiceConfig(journal_dir=str(journal_dir), **EAGER))
    await service.register("g", graph)
    await service.subscribe("g", "alpha", make_pattern("A", "B"), k=3)
    await service.subscribe("g", "beta", make_pattern("B", "C"))
    stream = generate_payload_stream(
        graph, payloads=payloads, updates_per_payload=updates_per_payload, seed=seed
    )
    for index, payload in enumerate(stream):
        receipt = await service.submit("g", payload)
        assert receipt.rejected == 0, receipt.errors
        if control_records and index == payloads // 2:
            assert await service.unsubscribe("g", "beta")
            await service.subscribe("g", "gamma", make_pattern("C", "D"), k=2)
    await service.drain()
    stats = service.stats("g")
    snapshot = service.snapshot("g")
    outcome = {
        "matches": observed_matches(service, "g"),
        "nodes": sorted(str(node) for node in snapshot.data.nodes()),
        "edges": sorted((str(s), str(t)) for s, t in snapshot.data.edges()),
        "version": snapshot.version,
        "settles": stats["settles"],
        "accepted": stats["accepted"],
        "history": service.graph_history("g").canonical_doc(),
    }
    await service.close()
    return {
        "path": journal_dir / "g.journal.jsonl",
        "graph": graph,
        "outcome": outcome,
        "stats": stats,
    }


@pytest.fixture
def recording(tmp_path):
    """A recorded 12-payload, 3-pattern session with control records."""
    return run(record_session(tmp_path))
