"""End-to-end checks of the paper's worked example (Figures 1-4, Tables I-IX)."""

from repro import paper_example
from repro.spl.matrix import INF, SLenMatrix


def test_figure1_graph_shape():
    data = paper_example.figure1_data_graph()
    assert data.number_of_nodes == 8
    assert data.number_of_edges == len(paper_example.FIGURE1_EDGES)
    assert data.nodes_with_label("SE") == {"SE1", "SE2"}


def test_figure1_pattern_shape():
    pattern = paper_example.figure1_pattern_graph()
    assert pattern.number_of_nodes == 4
    assert pattern.bound("PM", "SE") == 3
    assert pattern.bound("PM", "S") == 3
    assert pattern.bound("SE", "TE") == 4


def test_table3_is_consistent_with_graph():
    data = paper_example.figure1_data_graph()
    slen = SLenMatrix.from_graph(data)
    expected = paper_example.table3_slen_expected()
    for source in data.nodes():
        for target in data.nodes():
            assert slen.distance(source, target) == expected.get((source, target), INF)


def test_example2_update_names():
    names = paper_example.example2_update_names()
    assert names["UD1"].source == "SE1" and names["UD1"].target == "TE2"
    assert names["UP1"].bound == 2
    assert len(paper_example.example2_updates()) == 4


def test_figure4_graph_and_tables():
    data = paper_example.figure4_data_graph()
    assert data.number_of_nodes == 8
    assert set(paper_example.table8_expected()) == {
        (s, t) for s in ("SE1", "SE2", "SE3", "SE4") for t in ("SE1", "SE2", "SE3", "SE4")
    }
    assert all(value >= 0 for value in paper_example.table9_expected().values() if value != INF)
