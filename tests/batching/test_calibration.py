"""Calibration-convergence suite for the cost-model refit.

Synthetic telemetry with a *known* ground-truth cost model lets the
suite assert convergence exactly: :func:`refit_cost_model` must recover
the generating coefficients within tolerance, survive a JSON round trip
of the telemetry, reject fits that predict held-out observations worse
than the incumbent, and never regress ``planner_choice_accuracy``
against the model the telemetry was generated from.  This suite is in
the CI no-skip gate next to the differential and strategy-equivalence
suites.
"""

from __future__ import annotations

import pytest

from repro.batching.calibrate import (
    DEFAULT_HOLDOUT_EVERY,
    main as calibrate_main,
    planner_choice_accuracy,
    refit_cost_model,
    refit_report,
)
from repro.batching.planner import (
    COST_MODEL_COEFFICIENTS,
    DEFAULT_COST_MODEL,
    BatchStatistics,
    CostModel,
    plan_batch,
)
from repro.batching.telemetry import PlanObservation, TelemetryLog

#: Wall-clock seconds of one per-update unit in the synthetic telemetry.
UNIT = 0.002


def stats(insertions, deletions, node_count=320, backend="sparse", partition=True):
    return BatchStatistics(
        batch_size=insertions + deletions,
        data_updates=insertions + deletions,
        insertions=insertions,
        deletions=deletions,
        node_count=node_count,
        backend=backend,
        partition_available=partition,
    )


def synthetic_observations(
    model: CostModel, shapes=None, unit: float = UNIT, backend: str = "sparse"
):
    """Noise-free telemetry generated from ``model``: every strategy's
    elapsed time is exactly its model cost times ``unit``."""
    if shapes is None:
        # Diverse (insertions, deletions) so the 3-parameter fit is
        # well-conditioned; node_count varies for the partitioned term.
        shapes = [
            (4, 4, 100),
            (8, 24, 150),
            (16, 48, 200),
            (32, 32, 250),
            (40, 88, 300),
            (64, 192, 320),
            (12, 52, 400),
            (96, 160, 500),
            (20, 108, 600),
            (56, 72, 700),
            (80, 240, 800),
            (10, 86, 900),
        ]
    observations = []
    for insertions, deletions, node_count in shapes:
        s = stats(insertions, deletions, node_count=node_count, backend=backend)
        costs = model.estimate(s)
        for strategy, cost in costs.items():
            observations.append(
                PlanObservation(
                    statistics=s,
                    requested=strategy,
                    planned=strategy,
                    executed=strategy,
                    predicted_costs=DEFAULT_COST_MODEL.estimate(s),
                    elapsed_seconds=cost * unit,
                    algorithm="synthetic",
                )
            )
    return observations


#: A ground truth deliberately far from the shipped calibration.
TRUTH = DEFAULT_COST_MODEL.replace(
    coalesce_fixed_overhead=24.0,
    coalesced_insert_factor=0.7,
    coalesced_delete_factor=0.3,
    partitioned_delete_factor=0.25,
    partition_fixed_overhead=6.0,
)


class TestConvergence:
    def test_refit_recovers_generating_coefficients(self):
        observations = synthetic_observations(TRUTH)
        refit = refit_cost_model(observations, incumbent=DEFAULT_COST_MODEL)
        assert refit is not DEFAULT_COST_MODEL
        assert refit.version == DEFAULT_COST_MODEL.version + 1
        assert refit.coalesce_fixed_overhead == pytest.approx(24.0, rel=1e-6)
        assert refit.coalesced_insert_factor == pytest.approx(0.7, rel=1e-6)
        assert refit.coalesced_delete_factor == pytest.approx(0.3, rel=1e-6)
        # The partitioned fit reuses the incumbent per-node term, so the
        # recovered flat/deletion terms absorb the (zero) difference.
        assert refit.partitioned_delete_factor == pytest.approx(0.25, rel=1e-6)
        assert refit.partition_fixed_overhead == pytest.approx(6.0, rel=1e-4)

    def test_report_diagnostics(self):
        report = refit_report(synthetic_observations(TRUTH), incumbent=DEFAULT_COST_MODEL)
        assert report.converged
        assert report.accepted == {"coalesced": True, "partitioned": True}
        assert report.unit_seconds == pytest.approx(UNIT, rel=1e-9)
        assert report.observation_counts["per-update"] == 12
        for errors in report.holdout_errors.values():
            assert errors["candidate"] <= errors["incumbent"]

    def test_telemetry_round_trip_reproduces_refit(self, tmp_path):
        """record -> persist -> load -> refit matches the in-memory refit
        coefficient-for-coefficient (the satellite's acceptance check)."""
        log = TelemetryLog()
        log.extend(synthetic_observations(TRUTH))
        direct = refit_cost_model(log.observations(), incumbent=DEFAULT_COST_MODEL)
        path = tmp_path / "telemetry.json"
        log.save(path)
        reloaded = refit_cost_model(
            TelemetryLog.load(path).observations(), incumbent=DEFAULT_COST_MODEL
        )
        for name in COST_MODEL_COEFFICIENTS:
            assert getattr(reloaded, name) == pytest.approx(
                getattr(direct, name), rel=1e-9
            ), name

    def test_dense_discount_recovered_from_mixed_backends(self):
        truth = TRUTH.replace(dense_coalesced_discount=0.8)
        observations = synthetic_observations(truth) + synthetic_observations(
            truth, backend="dense"
        )
        report = refit_report(observations, incumbent=DEFAULT_COST_MODEL)
        assert report.accepted.get("dense-discount") is True
        assert report.model.dense_coalesced_discount == pytest.approx(0.8, rel=1e-6)

    def test_backend_column_recovered_from_mixed_backends(self):
        """The full backend feature column (per-update factor + both
        coalesced discounts) is identified from mixed telemetry."""
        truth = TRUTH.replace(
            dense_per_update_factor=0.4,
            dense_coalesced_discount=0.8,
            dense_coalesced_insert_discount=0.6,
        )
        observations = synthetic_observations(truth) + synthetic_observations(
            truth, backend="dense"
        )
        report = refit_report(observations, incumbent=DEFAULT_COST_MODEL)
        assert report.accepted.get("dense-per-update") is True
        assert report.accepted.get("dense-discount") is True
        assert report.model.dense_per_update_factor == pytest.approx(0.4, rel=1e-6)
        assert report.model.dense_coalesced_discount == pytest.approx(0.8, rel=1e-6)
        assert report.model.dense_coalesced_insert_discount == pytest.approx(
            0.6, rel=1e-6
        )
        # The unit is anchored on the sparse rows alone, so the dense
        # factor does not pollute the scale.
        assert report.unit_seconds == pytest.approx(UNIT, rel=1e-9)

    def test_dense_only_stream_de_factors_the_anchor(self):
        """With only dense per-update rows, the unit is de-factored by
        the incumbent's dense_per_update_factor instead of mis-anchored."""
        truth = DEFAULT_COST_MODEL.replace(dense_per_update_factor=0.5)
        observations = synthetic_observations(truth, backend="dense")
        report = refit_report(observations, incumbent=truth)
        assert report.unit_seconds == pytest.approx(UNIT, rel=1e-9)

    def test_sparse_minority_does_not_abort_the_refit(self):
        """A mostly-dense stream with a handful of sparse per-update
        rows must still refit (via the dense-anchored fallback) — a few
        sparse observations cannot make calibration strictly worse than
        none at all."""
        dense_stream = synthetic_observations(DEFAULT_COST_MODEL, backend="dense")
        sparse_minority = [
            o for o in synthetic_observations(DEFAULT_COST_MODEL) if o.executed == "per-update"
        ][:2]
        report = refit_report(
            sparse_minority + dense_stream, incumbent=DEFAULT_COST_MODEL
        )
        assert report.unit_seconds is not None
        assert report.unit_seconds == pytest.approx(UNIT, rel=1e-9)
        assert report.converged

    def test_refit_is_idempotent_on_its_own_telemetry(self):
        observations = synthetic_observations(TRUTH)
        once = refit_cost_model(observations, incumbent=DEFAULT_COST_MODEL)
        twice = refit_cost_model(observations, incumbent=once)
        for name in ("coalesce_fixed_overhead", "coalesced_insert_factor",
                     "coalesced_delete_factor", "partitioned_delete_factor"):
            assert getattr(twice, name) == pytest.approx(getattr(once, name), rel=1e-6)


class TestRejectionGuard:
    def test_too_few_observations_keep_incumbent(self):
        observations = synthetic_observations(TRUTH)[:4]
        refit = refit_cost_model(observations, incumbent=DEFAULT_COST_MODEL)
        assert refit is DEFAULT_COST_MODEL

    def test_no_per_update_anchor_keeps_incumbent(self):
        observations = [
            o for o in synthetic_observations(TRUTH) if o.executed != "per-update"
        ]
        report = refit_report(observations, incumbent=DEFAULT_COST_MODEL)
        assert report.model is DEFAULT_COST_MODEL
        assert not report.converged

    def test_partitioned_fit_proceeds_without_coalesced_rows(self):
        """Telemetry from a UA-GPNM-only run can hold per-update and
        partitioned observations but no coalesced ones; the partitioned
        fit must still run (it only needs the incumbent's coalesced
        coefficients for the residual)."""
        observations = [
            o for o in synthetic_observations(TRUTH) if o.executed != "coalesced"
        ]
        report = refit_report(observations, incumbent=DEFAULT_COST_MODEL)
        assert report.converged
        assert "partitioned" in report.accepted
        assert "coalesced" not in report.accepted

    def test_degenerate_features_keep_incumbent(self):
        """Every coalesced row has identical features: singular fit."""
        shape = [(16, 48, 200)] * 12
        observations = synthetic_observations(TRUTH, shapes=shape)
        report = refit_report(observations, incumbent=DEFAULT_COST_MODEL)
        assert report.model is DEFAULT_COST_MODEL

    def test_bad_observations_keep_incumbent(self):
        """Training rows corrupted, holdout rows honest: the candidate
        fit predicts the holdout worse than the incumbent, so the guard
        rejects it and the incumbent's coefficients survive."""
        observations = synthetic_observations(DEFAULT_COST_MODEL)
        corrupted = []
        position = {"coalesced": 0, "partitioned": 0}
        for o in observations:
            if o.executed in position:
                position[o.executed] += 1
                # _split_holdout holds out every holdout_every-th row of
                # a strategy; corrupt only the training rows.
                if position[o.executed] % DEFAULT_HOLDOUT_EVERY:
                    o = PlanObservation(
                        statistics=o.statistics,
                        requested=o.requested,
                        planned=o.planned,
                        executed=o.executed,
                        predicted_costs=o.predicted_costs,
                        elapsed_seconds=o.elapsed_seconds
                        * (50.0 if position[o.executed] % 2 else 0.01),
                        algorithm=o.algorithm,
                    )
            corrupted.append(o)
        report = refit_report(corrupted, incumbent=DEFAULT_COST_MODEL)
        assert report.model is DEFAULT_COST_MODEL
        assert report.accepted.get("coalesced") is False

    def test_rejected_refit_keeps_version(self):
        observations = synthetic_observations(TRUTH)[:4]
        refit = refit_cost_model(observations, incumbent=DEFAULT_COST_MODEL)
        assert refit.version == DEFAULT_COST_MODEL.version


class TestChoiceAccuracy:
    def test_perfect_model_scores_perfectly(self):
        observations = synthetic_observations(TRUTH)
        result = planner_choice_accuracy(TRUTH, observations, min_batch=2)
        assert result["cells"] == 12
        assert result["accuracy"] == 1.0

    def test_refit_matches_or_beats_shipped_on_generated_grid(self):
        """The acceptance inequality of the CI calibration job, on a
        grid where the shipped model is wrong by construction."""
        observations = synthetic_observations(TRUTH)
        refit = refit_cost_model(observations, incumbent=DEFAULT_COST_MODEL)
        shipped = planner_choice_accuracy(DEFAULT_COST_MODEL, observations, min_batch=2)
        refitted = planner_choice_accuracy(refit, observations, min_batch=2)
        assert refitted["accuracy"] >= shipped["accuracy"]
        assert refitted["accuracy"] == 1.0

    def test_no_multi_strategy_cells_means_no_accuracy(self):
        observations = [
            o for o in synthetic_observations(TRUTH) if o.executed == "per-update"
        ]
        result = planner_choice_accuracy(DEFAULT_COST_MODEL, observations)
        assert result["cells"] == 0
        assert result["accuracy"] is None


class TestCostModelSerialization:
    def test_json_round_trip(self, tmp_path):
        model = TRUTH.replace(version=7, calibrated_from="test")
        path = tmp_path / "model.json"
        model.save_json(path)
        assert CostModel.load_json(path) == model

    def test_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "model.json"
        path.write_text('{"format_version": 99}')
        with pytest.raises(ValueError):
            CostModel.load_json(path)

    def test_rejects_missing_and_unknown_coefficients(self):
        payload = DEFAULT_COST_MODEL.as_dict()
        del payload["coefficients"]["coalesce_fixed_overhead"]
        with pytest.raises(ValueError, match="missing"):
            CostModel.from_dict(payload)
        payload = DEFAULT_COST_MODEL.as_dict()
        payload["coefficients"]["mystery"] = 1.0
        with pytest.raises(ValueError, match="unknown"):
            CostModel.from_dict(payload)

    def test_plan_batch_consumes_model(self):
        """The acceptance criterion: plan_batch takes a serializable
        CostModel and the model changes the routing."""
        s = stats(insertions=51, deletions=205)
        assert plan_batch(s).strategy == "coalesced"
        prohibitive = DEFAULT_COST_MODEL.replace(coalesce_fixed_overhead=1e9)
        assert plan_batch(s, model=prohibitive).strategy == "per-update"
        round_tripped = CostModel.from_dict(prohibitive.as_dict())
        assert plan_batch(s, model=round_tripped).strategy == "per-update"


class TestCalibrateCLI:
    def test_end_to_end(self, tmp_path, capsys):
        log = TelemetryLog()
        log.extend(synthetic_observations(TRUTH))
        telemetry_path = tmp_path / "telemetry.json"
        log.save(telemetry_path)
        model_path = tmp_path / "refit.json"
        exit_code = calibrate_main(
            [
                str(telemetry_path),
                "--out",
                str(model_path),
                "--min-batch",
                "2",
                "--require-non-regression",
            ]
        )
        assert exit_code == 0
        refit = CostModel.load_json(model_path)
        assert refit.version == DEFAULT_COST_MODEL.version + 1
        assert refit.coalesce_fixed_overhead == pytest.approx(24.0, rel=1e-6)
        out = capsys.readouterr().out
        assert '"converged": true' in out

    def test_vacuous_accuracy_fails_the_gate(self, tmp_path):
        """No telemetry cell measured >= 2 strategies: the refit can
        converge, but --require-non-regression must refuse to certify."""
        observations = synthetic_observations(TRUTH)
        shapes = sorted({o.features_key for o in observations})
        keep = {shape: ("per-update", "coalesced", "partitioned")[i % 3]
                for i, shape in enumerate(shapes)}
        filtered = [o for o in observations if o.executed == keep[o.features_key]]
        log = TelemetryLog()
        log.extend(filtered)
        telemetry_path = tmp_path / "telemetry.json"
        log.save(telemetry_path)
        assert calibrate_main([str(telemetry_path)]) == 0
        assert calibrate_main([str(telemetry_path), "--require-non-regression"]) == 1

    def test_non_convergence_exits_nonzero(self, tmp_path):
        log = TelemetryLog()
        log.extend(synthetic_observations(TRUTH)[:4])
        telemetry_path = tmp_path / "telemetry.json"
        log.save(telemetry_path)
        assert calibrate_main([str(telemetry_path)]) == 1


class TestOnlineRecalibration:
    def test_runner_level_refit_swaps_model(self):
        """An engine with recalibrate_every refits from its own log; a
        pre-seeded log generated from TRUTH pulls the active model
        towards TRUTH after one more observed batch."""
        from repro.algorithms.ua_gpnm import UAGPNM
        from repro.workloads.generators import SocialGraphSpec, generate_social_graph
        from repro.workloads.pattern_gen import PatternSpec, generate_pattern
        from repro.workloads.update_gen import UpdateWorkloadSpec, generate_update_batch

        log = TelemetryLog()
        log.extend(synthetic_observations(TRUTH))
        data = generate_social_graph(
            SocialGraphSpec(name="recal", num_nodes=40, num_edges=120, seed=9)
        )
        pattern = generate_pattern(
            PatternSpec(num_nodes=4, num_edges=4, labels=("PM", "SE", "TE"), seed=9)
        )
        batch = generate_update_batch(
            data,
            pattern,
            UpdateWorkloadSpec(num_pattern_updates=0, num_data_updates=10, seed=9),
        )
        engine = UAGPNM(pattern, data, telemetry=log, recalibrate_every=1)
        assert engine.cost_model is DEFAULT_COST_MODEL
        engine.subsequent_query(batch)
        assert engine.cost_model.version > DEFAULT_COST_MODEL.version
        assert engine.cost_model.coalesce_fixed_overhead == pytest.approx(
            24.0, rel=0.25
        )
