"""Regression: telemetry must survive concurrent writers and torn writes.

The streaming service shares one :class:`TelemetryLog` across every
graph's settles (executor threads), so ``record`` and the lifetime
counter must be exact under contention, and ``save`` must be atomic —
the calibration job reads the file while the service is still running.
"""

import json
import os
import threading

import pytest

from repro.batching.planner import BatchStatistics
from repro.batching.telemetry import PlanObservation, TelemetryLog


def observation(i: int = 0) -> PlanObservation:
    return PlanObservation(
        statistics=BatchStatistics(
            batch_size=i,
            data_updates=i,
            insertions=i,
            deletions=0,
            node_count=100,
            backend="sparse",
            partition_available=False,
        ),
        requested="auto",
        planned="per-update",
        executed="per-update",
        predicted_costs={"per-update": 1.0},
        elapsed_seconds=0.001,
    )


def test_concurrent_records_are_all_counted():
    log = TelemetryLog(retention=128)
    threads = 8
    per_thread = 500
    barrier = threading.Barrier(threads)

    def hammer(thread_index: int) -> None:
        barrier.wait()
        for i in range(per_thread):
            log.record(observation(thread_index * per_thread + i))

    workers = [threading.Thread(target=hammer, args=(t,)) for t in range(threads)]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join()

    assert log.total_recorded == threads * per_thread
    assert len(log) == 128  # retention bound held
    assert log.dropped == threads * per_thread - 128


def test_concurrent_save_and_record_produce_a_parseable_file(tmp_path):
    log = TelemetryLog(retention=64)
    path = tmp_path / "telemetry.json"
    stop = threading.Event()

    def writer() -> None:
        i = 0
        while not stop.is_set():
            log.record(observation(i))
            i += 1

    def saver() -> None:
        for _ in range(50):
            log.save(path)

    recorder = threading.Thread(target=writer)
    recorder.start()
    try:
        saver()
    finally:
        stop.set()
        recorder.join()
    # Every snapshot the file ever held was internally consistent; the
    # last one must parse and round-trip.
    loaded = TelemetryLog.load(path)
    assert len(loaded) <= 64
    payload = json.loads(path.read_text())
    assert payload["total_recorded"] >= len(loaded)


def test_save_failure_leaves_previous_artifact_intact(tmp_path, monkeypatch):
    log = TelemetryLog()
    log.record(observation(1))
    path = tmp_path / "telemetry.json"
    log.save(path)
    before = path.read_text()

    log.record(observation(2))
    real_replace = os.replace

    def broken_replace(src, dst):
        raise OSError("disk full")

    monkeypatch.setattr(os, "replace", broken_replace)
    with pytest.raises(OSError, match="disk full"):
        log.save(path)
    monkeypatch.setattr(os, "replace", real_replace)

    assert path.read_text() == before  # old artifact untouched
    # The failed attempt's temp file was cleaned up.
    assert os.listdir(tmp_path) == [path.name]


def test_atomic_write_text_cleans_up_on_write_failure(tmp_path, monkeypatch):
    from repro.ioutil import atomic_write_text

    target = tmp_path / "artifact.json"
    target.write_text("original")

    def broken_fsync(fd):
        raise OSError("io error")

    monkeypatch.setattr(os, "fsync", broken_fsync)
    with pytest.raises(OSError, match="io error"):
        atomic_write_text(target, "replacement")
    monkeypatch.undo()

    assert target.read_text() == "original"
    assert os.listdir(tmp_path) == [target.name]
