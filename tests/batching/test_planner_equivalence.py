"""Property-based strategy-equivalence suite for the execution planner.

Every seed deterministically derives a random social graph and a random
update stream for each update mix (balanced / insert-heavy /
delete-heavy).  For each of the planner's three strategies —
``per-update``, ``coalesced`` and ``partitioned`` — forced explicitly,
the suite asserts **byte-identical results against the sequential
oracle** on both ``SLen`` storage backends, at two levels:

* **kernel level** — the maintained matrix equals the sequentially
  maintained one (and a from-scratch rebuild), and the merged
  :class:`~repro.spl.incremental.SLenDelta` is fold-equal to the
  composition of the sequential per-update deltas
  (:func:`~repro.spl.incremental.fold_deltas`); the coalesced and
  partitioned routes must agree *exactly* (including attribution);
* **algorithm level** — ``UAGPNM`` with each forced ``batch_plan``
  (plus ``auto``) returns the same ``SQuery`` and internal matrix as the
  ``BatchGPNM`` from-scratch oracle.

A third of the seeds additionally inject a within-batch resurrection
(delete + re-insert of a node) so the payload-aware cancellation path is
exercised under every strategy.  The suite runs 50 seeds x 3 mixes x 2
backends; the dense half skips only when numpy is missing, which CI
treats as a failure (no-skip gate).
"""

from __future__ import annotations

import pytest

from repro.algorithms.scratch import BatchGPNM
from repro.algorithms.ua_gpnm import UAGPNM
from repro.batching.coalesce import coalesce_slen
from repro.batching.compiler import compile_batch
from repro.batching.planner import STRATEGIES
from repro.graph.updates import UpdateKind, delete_data_node, insert_data_edge, insert_data_node
from repro.matching.gpnm import gpnm_query
from repro.partition.partitioned_spl import coalesce_slen_partitioned
from repro.spl.backend import dense_available
from repro.spl.incremental import fold_deltas, update_slen
from repro.spl.matrix import SLenMatrix
from repro.workloads.generators import SocialGraphSpec, generate_social_graph
from repro.workloads.pattern_gen import PatternSpec, generate_pattern
from repro.workloads.update_gen import UPDATE_MIXES, UpdateWorkloadSpec, generate_update_batch

#: >= 50 seeds, per the acceptance criteria.
SEEDS = tuple(range(50))
MIXES = UPDATE_MIXES
BACKENDS = ("sparse", "dense")

requires_backend = {
    "sparse": lambda: None,
    "dense": lambda: None
    if dense_available()
    else pytest.skip("numpy unavailable; dense backend cannot run"),
}


def _instance(seed: int, mix: str, num_pattern_updates: int = 0):
    """One deterministic (data, pattern, stream) instance."""
    data = generate_social_graph(
        SocialGraphSpec(
            name=f"plan{seed}{mix[0]}",
            num_nodes=30 + (seed % 4) * 4,
            num_edges=75 + (seed % 5) * 10,
            seed=4000 + seed,
        )
    )
    pattern = generate_pattern(
        PatternSpec(
            num_nodes=4 + seed % 2,
            num_edges=4 + seed % 2,
            labels=("PM", "SE", "TE"),
            seed=5000 + seed,
        )
    )
    batch = generate_update_batch(
        data,
        pattern,
        UpdateWorkloadSpec(
            num_pattern_updates=num_pattern_updates,
            num_data_updates=14 + (seed % 4) * 3,
            seed=6000 + 3 * seed,
            mix=mix,
        ),
    )
    stream = list(batch)
    if seed % 3 == 0:
        stream = stream + _resurrection_tail(data, stream)
    return data, pattern, stream


def _resurrection_tail(data, stream):
    """A valid delete + re-insert (+ late edge) of an untouched node."""
    deleted = {u.node for u in stream if u.kind is UpdateKind.NODE_DELETE}
    inserted_pairs = {
        (u.source, u.target) for u in stream if u.kind is UpdateKind.EDGE_INSERT
    }
    candidates = sorted((n for n in data.nodes() if n not in deleted), key=repr)
    victim = candidates[0]
    safe = next(
        n
        for n in candidates[1:]
        if not data.has_edge(victim, n) and (victim, n) not in inserted_pairs
    )
    return [
        delete_data_node(victim, data.labels_of(victim)),
        insert_data_node(victim, data.labels_of(victim)[0]),
        insert_data_edge(victim, safe),
    ]


def _sequential_oracle(data, stream, backend):
    """Apply the raw stream one update at a time; the ground truth."""
    graph = data.copy()
    matrix = SLenMatrix.from_graph(graph, backend=backend)
    deltas = []
    for update in stream:
        update.apply(graph)
        deltas.append(update_slen(matrix, graph, update))
    return graph, matrix, fold_deltas(deltas)


def _execute(strategy, data, compiled, backend):
    """Run one forced strategy over the compiled stream; return (graph,
    matrix, merged delta, full outcome or None)."""
    graph = data.copy()
    matrix = SLenMatrix.from_graph(graph, backend=backend)
    updates = compiled.data_updates()
    if strategy == "per-update":
        deltas = []
        for update in updates:
            update.apply(graph)
            deltas.append(update_slen(matrix, graph, update))
        return graph, matrix, fold_deltas(deltas), None
    for update in updates:
        update.apply(graph)
    if strategy == "coalesced":
        outcome = coalesce_slen(matrix, graph, updates)
    else:
        # recompute_fraction=0 forces the partition-recompute settle so
        # the partitioned code path is genuinely exercised even on small
        # affected regions (the production threshold falls back).
        outcome = coalesce_slen_partitioned(
            matrix, graph, updates, recompute_fraction=0.0
        )
    return graph, matrix, outcome.delta, outcome


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("mix", MIXES)
@pytest.mark.parametrize("seed", SEEDS)
def test_kernel_level_equivalence(seed, mix, backend):
    """All three strategies leave matrix and merged delta fold-equal."""
    requires_backend[backend]()
    data, _pattern, stream = _instance(seed, mix)
    oracle_graph, oracle_matrix, folded = _sequential_oracle(data, stream, backend)
    compiled = compile_batch(stream)

    outcomes = {}
    for strategy in STRATEGIES:
        label = f"seed={seed} mix={mix} backend={backend} strategy={strategy}"
        graph, matrix, delta, outcome = _execute(strategy, data, compiled, backend)
        assert graph == oracle_graph, label
        assert matrix == oracle_matrix, f"{label}: matrix differs from sequential"
        assert delta.changed_pairs == folded.changed_pairs, (
            f"{label}: merged delta not fold-equal to the sequential oracle"
        )
        assert delta.structural_nodes == folded.structural_nodes, label
        assert delta.affected_nodes == folded.affected_nodes, label
        outcomes[strategy] = (matrix, delta, outcome)

    # The rebuild check pins the oracle itself.
    assert oracle_matrix == SLenMatrix.from_graph(oracle_graph, backend=backend)

    # Coalesced and partitioned run the same pass modulo the settle
    # kernel, so they must agree exactly — attribution included.
    _m1, delta_c, outcome_c = outcomes["coalesced"]
    _m2, delta_p, outcome_p = outcomes["partitioned"]
    assert delta_c.changed_pairs == delta_p.changed_pairs
    assert delta_c.recomputed_sources == delta_p.recomputed_sources
    assert [d.changed_pairs for d in outcome_c.per_update] == [
        d.changed_pairs for d in outcome_p.per_update
    ]


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("mix", MIXES)
@pytest.mark.parametrize("seed", SEEDS)
def test_algorithm_level_equivalence(seed, mix, backend):
    """UAGPNM under every forced plan (and auto) matches the oracle."""
    requires_backend[backend]()
    data, pattern, stream = _instance(seed, mix, num_pattern_updates=seed % 3)
    slen = SLenMatrix.from_graph(data, backend=backend)
    iquery = gpnm_query(pattern, data, slen, enforce_totality=False)

    oracle = BatchGPNM(pattern, data, precomputed_slen=slen, precomputed_relation=iquery)
    expected = oracle.subsequent_query(list(stream)).result
    expected_slen = oracle.slen

    for plan in STRATEGIES + ("auto",):
        engine = UAGPNM(
            pattern,
            data,
            use_partition=True,
            precomputed_slen=slen,
            precomputed_relation=iquery,
            batch_plan=plan,
        )
        outcome = engine.subsequent_query(list(stream))
        label = f"seed={seed} mix={mix} backend={backend} plan={plan}"
        assert outcome.result == expected, f"{label}: SQuery differs from oracle"
        assert engine.slen == expected_slen, f"{label}: SLen differs from rebuild"
        assert outcome.plan is not None, label
        if plan != "auto":
            assert outcome.stats.planned_strategy == plan, label
        else:
            assert outcome.stats.planned_strategy in STRATEGIES, label
