"""Unit tests for the adaptive batch execution planner.

Covers the routing rules (the ``coalesce_min_batch`` guard as a planner
rule, insert-dominated routing, cost-model argmin, partitioned
availability), the ``PlanReport`` surface, and the deprecation of the
raw ``coalesce_updates`` flag — the planner is the single source of
truth now, so the old "flag says coalesce, guard says per-update"
disagreement is gone by construction.
"""

from __future__ import annotations

import pytest

from repro.algorithms.ua_gpnm import UAGPNM
from repro.batching.planner import (
    DEFAULT_COST_MODEL,
    INSERT_ROUTE_THRESHOLD,
    PLAN_CHOICES,
    STRATEGIES,
    BatchStatistics,
    CostModel,
    estimate_costs,
    plan_batch,
)
from repro.graph.updates import (
    delete_data_edge,
    insert_data_edge,
    insert_pattern_edge,
)


def stats(
    size=256,
    insertions=128,
    deletions=128,
    node_count=320,
    backend="sparse",
    partition=False,
):
    return BatchStatistics(
        batch_size=size,
        data_updates=insertions + deletions,
        insertions=insertions,
        deletions=deletions,
        node_count=node_count,
        backend=backend,
        partition_available=partition,
    )


class TestAutoRouting:
    def test_small_batch_stays_per_update(self):
        """Rule 1 subsumes the old static coalesce_min_batch guard."""
        plan = plan_batch(stats(size=16, insertions=8, deletions=8), min_batch=64)
        assert plan.strategy == "per-update"
        assert "crossover" in plan.reason

    def test_min_batch_is_configurable(self):
        plan = plan_batch(stats(size=16, insertions=8, deletions=8), min_batch=2)
        assert plan.strategy != "per-update" or "crossover" not in plan.reason

    def test_single_data_update_stays_per_update(self):
        plan = plan_batch(stats(size=256, insertions=1, deletions=0), min_batch=2)
        assert plan.strategy == "per-update"

    def test_pure_insert_batch_routes_away_from_coalescing(self):
        plan = plan_batch(stats(insertions=256, deletions=0))
        assert plan.strategy == "per-update"
        assert "non-win" in plan.reason

    def test_insert_dominated_batch_routes_away_from_coalescing(self):
        plan = plan_batch(stats(insertions=205, deletions=51))
        assert plan.strategy == "per-update"
        assert "insert-dominated" in plan.reason
        assert plan.statistics.insert_fraction >= INSERT_ROUTE_THRESHOLD

    def test_delete_heavy_batch_coalesces(self):
        plan = plan_batch(stats(insertions=51, deletions=205))
        assert plan.strategy == "coalesced"

    def test_partitioned_wins_on_large_deletion_volume(self):
        """The quotient-condensation overhead amortises only once the
        deletion volume is large; below that, plain coalesced wins."""
        small = plan_batch(stats(insertions=51, deletions=205, partition=True))
        assert small.strategy == "coalesced"
        large = plan_batch(stats(size=800, insertions=100, deletions=700, partition=True))
        assert large.strategy == "partitioned"

    def test_partitioned_not_offered_without_partition(self):
        costs = estimate_costs(stats(partition=False))
        assert "partitioned" not in costs
        costs = estimate_costs(stats(partition=True))
        assert set(costs) == set(STRATEGIES)

    def test_balanced_crossover_matches_benchmark(self):
        """Auto tracks the BENCH_batching.json crossover: per-update
        below 64 (the min-batch rule), coalesced from 64 up on the
        balanced mix (where the transposed sweep put the crossover)."""
        assert plan_batch(stats(size=32, insertions=16, deletions=16)).strategy == "per-update"
        assert plan_batch(stats(size=64, insertions=32, deletions=32)).strategy == "coalesced"
        assert plan_batch(stats(size=256, insertions=128, deletions=128)).strategy == "coalesced"


class TestCostModelParameter:
    """plan_batch consumes an explicit CostModel (ISSUE 4 acceptance)."""

    def test_default_model_matches_module_constants(self):
        assert DEFAULT_COST_MODEL.insert_route_threshold == INSERT_ROUTE_THRESHOLD
        assert estimate_costs(stats()) == DEFAULT_COST_MODEL.estimate(stats())

    def test_model_changes_routing(self):
        s = stats(insertions=51, deletions=205)
        assert plan_batch(s).strategy == "coalesced"
        prohibitive = DEFAULT_COST_MODEL.replace(coalesce_fixed_overhead=1e9)
        assert plan_batch(s, model=prohibitive).strategy == "per-update"

    def test_model_threshold_drives_insert_routing(self):
        s = stats(insertions=180, deletions=76)  # insert fraction ~0.70
        assert plan_batch(s).strategy != "per-update"
        eager = DEFAULT_COST_MODEL.replace(insert_route_threshold=0.5)
        routed = plan_batch(s, model=eager)
        assert routed.strategy == "per-update"
        assert "insert-dominated" in routed.reason

    def test_dense_discount_in_model_estimates(self):
        sparse_costs = DEFAULT_COST_MODEL.estimate(stats(backend="sparse"))
        dense_costs = DEFAULT_COST_MODEL.estimate(stats(backend="dense"))
        assert dense_costs["coalesced"] < sparse_costs["coalesced"]

    def test_backend_feature_column_scales_per_update(self):
        """dense_per_update_factor prices dense per-update passes."""
        model = DEFAULT_COST_MODEL.replace(dense_per_update_factor=0.5)
        s_sparse = stats(backend="sparse")
        s_dense = stats(backend="dense")
        assert model.estimate(s_sparse)["per-update"] == float(s_sparse.data_updates)
        assert model.estimate(s_dense)["per-update"] == pytest.approx(
            0.5 * s_dense.data_updates
        )
        # The default column is neutral: per-update costs match across
        # backends under the shipped calibration.
        assert DEFAULT_COST_MODEL.estimate(s_dense)["per-update"] == float(
            s_dense.data_updates
        )

    def test_backend_feature_column_scales_coalesced_inserts(self):
        model = DEFAULT_COST_MODEL.replace(dense_coalesced_insert_discount=0.5)
        sparse_cost = model.estimate(stats(backend="sparse"))["coalesced"]
        dense_cost = model.estimate(stats(backend="dense"))["coalesced"]
        expected_drop = (
            stats().insertions * model.coalesced_insert_factor * 0.5
            + stats().deletions
            * model.coalesced_delete_factor
            * (1 - model.dense_coalesced_discount)
        )
        assert dense_cost == pytest.approx(sparse_cost - expected_drop)

    def test_backend_column_can_flip_routing(self):
        """A cheap dense per-update pass routes a batch away from
        coalescing that the sparse pricing would have taken."""
        s = stats(size=256, insertions=51, deletions=205, backend="dense")
        assert plan_batch(s).strategy == "coalesced"
        cheap_dense = DEFAULT_COST_MODEL.replace(dense_per_update_factor=0.05)
        assert plan_batch(s, model=cheap_dense).strategy == "per-update"

    def test_v1_payload_loads_with_neutral_column(self):
        """Pre-column CostModel JSON still loads (format_version 1)."""
        payload = DEFAULT_COST_MODEL.as_dict()
        payload["format_version"] = 1
        for name in ("dense_per_update_factor", "dense_coalesced_insert_discount"):
            del payload["coefficients"][name]
        loaded = CostModel.from_dict(payload)
        assert loaded.dense_per_update_factor == 1.0
        assert loaded.dense_coalesced_insert_discount == 1.0
        assert loaded.coalesce_fixed_overhead == DEFAULT_COST_MODEL.coalesce_fixed_overhead

    def test_current_format_must_carry_the_column(self):
        """A format_version-2 payload missing the backend feature
        column is malformed, not silently neutral."""
        payload = DEFAULT_COST_MODEL.as_dict()
        del payload["coefficients"]["dense_per_update_factor"]
        with pytest.raises(ValueError, match="missing cost model coefficients"):
            CostModel.from_dict(payload)

    def test_algorithms_expose_active_model(self):
        from tests.conftest import make_random_graph, make_random_pattern

        custom = CostModel(version=9)
        engine = UAGPNM(
            make_random_pattern(seed=7), make_random_graph(seed=7), cost_model=custom
        )
        assert engine.cost_model is custom
        default_engine = UAGPNM(make_random_pattern(seed=7), make_random_graph(seed=7))
        assert default_engine.cost_model is DEFAULT_COST_MODEL


class TestForcedPlans:
    @pytest.mark.parametrize("strategy", ["per-update", "coalesced"])
    def test_forced_strategies_are_honoured(self, strategy):
        plan = plan_batch(stats(size=4, insertions=2, deletions=2), requested=strategy)
        assert plan.strategy == strategy
        assert plan.forced

    def test_forced_partitioned_needs_a_partition(self):
        plan = plan_batch(stats(partition=True), requested="partitioned")
        assert plan.strategy == "partitioned"
        fallback = plan_batch(stats(partition=False), requested="partitioned")
        assert fallback.strategy == "coalesced"
        assert "fell back" in fallback.reason

    def test_unknown_plan_rejected(self):
        with pytest.raises(ValueError):
            plan_batch(stats(), requested="quantum")
        assert "auto" in PLAN_CHOICES


class TestBatchStatistics:
    def test_from_updates_counts_data_side_only(self):
        updates = [
            insert_data_edge("a", "b"),
            delete_data_edge("b", "c"),
            insert_pattern_edge("A", "B", 2),
        ]
        s = BatchStatistics.from_updates(updates, node_count=10)
        assert s.batch_size == 3
        assert s.data_updates == 2
        assert s.insertions == 1
        assert s.deletions == 1
        assert s.insert_fraction == 0.5

    def test_empty_stream(self):
        s = BatchStatistics.from_updates([], node_count=0)
        assert s.insert_fraction == 0.0
        assert s.delete_fraction == 0.0

    def test_report_as_dict_is_json_shaped(self):
        plan = plan_batch(stats(partition=True))
        summary = plan.as_dict()
        assert summary["strategy"] == plan.strategy
        assert set(summary["costs"]) <= set(STRATEGIES)


class TestDeprecatedFlag:
    """``coalesce_updates`` is deprecated; the planner decides."""

    @pytest.fixture(autouse=True)
    def _rearm_deprecation(self):
        """The warning fires once per process; re-arm it per test."""
        from repro.algorithms.base import reset_coalesce_deprecation_warning

        reset_coalesce_deprecation_warning()
        yield
        reset_coalesce_deprecation_warning()

    def _instance(self):
        from tests.conftest import make_random_graph, make_random_pattern

        data = make_random_graph(seed=5)
        pattern = make_random_pattern(seed=5)
        return pattern, data

    def test_coalesce_updates_warns(self):
        pattern, data = self._instance()
        with pytest.warns(DeprecationWarning, match="batch_plan"):
            engine = UAGPNM(pattern, data, coalesce_updates=True)
        assert engine.batch_plan == "auto"

    def test_warning_fires_once_per_process(self):
        """Workloads construct thousands of instances; the deprecation
        must not fire once per constructor."""
        import warnings as _warnings

        pattern, data = self._instance()
        with _warnings.catch_warnings(record=True) as caught:
            _warnings.simplefilter("always")
            UAGPNM(pattern, data, coalesce_updates=True)
            UAGPNM(pattern, data, coalesce_updates=True)
            UAGPNM(pattern, data, coalesce_updates=True)
        deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert len(deprecations) == 1

    def test_explicit_batch_plan_wins_over_flag(self):
        pattern, data = self._instance()
        with pytest.warns(DeprecationWarning):
            engine = UAGPNM(pattern, data, coalesce_updates=True, batch_plan="per-update")
        assert engine.batch_plan == "per-update"

    def test_no_flag_no_warning(self):
        import warnings as _warnings

        pattern, data = self._instance()
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            engine = UAGPNM(pattern, data, batch_plan="auto")
        assert engine.batch_plan == "auto"
        assert engine.coalesces_updates

    def test_auto_is_the_default(self):
        """The default flipped from per-update to auto once the planner
        soaked (ISSUE 4); no flag, no warning, auto plan."""
        import warnings as _warnings

        pattern, data = self._instance()
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            engine = UAGPNM(pattern, data)
        assert engine.batch_plan == "auto"
        assert engine.coalesces_updates

    def test_planner_is_single_source_of_truth(self):
        """The old latent disagreement: flag on, batch under the
        crossover.  The planner decides (per-update) and the record says
        so — no coalesced pass, no silent flag/guard split."""
        pattern, data = self._instance()
        with pytest.warns(DeprecationWarning):
            engine = UAGPNM(pattern, data, coalesce_updates=True, coalesce_min_batch=64)
        batch = [insert_data_edge("n0", "n9"), delete_data_edge("n1", "n2")]
        from repro.graph.digraph import DataGraph

        graph: DataGraph = engine.data
        batch = [
            u
            for u in batch
            if (u.is_insertion and not graph.has_edge(u.source, u.target))
            or (u.is_deletion and graph.has_edge(u.source, u.target))
        ]
        outcome = engine.subsequent_query(batch)
        assert outcome.stats.planned_strategy == "per-update"
        assert outcome.stats.coalesced_batches == 0
        assert outcome.plan is not None
        assert outcome.plan.strategy == "per-update"

    def test_unknown_batch_plan_rejected(self):
        pattern, data = self._instance()
        with pytest.raises(ValueError):
            UAGPNM(pattern, data, batch_plan="always")
