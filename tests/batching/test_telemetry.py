"""Telemetry log: recording, bounded retention, JSON round-trip, and
algorithm-level emission (every maintained batch observes itself)."""

from __future__ import annotations

import pytest

from repro.algorithms.inc_gpnm import IncGPNM
from repro.algorithms.ua_gpnm import UAGPNM
from repro.batching.planner import DEFAULT_COST_MODEL, BatchStatistics
from repro.batching.telemetry import (
    TELEMETRY_FORMAT_VERSION,
    PlanObservation,
    TelemetryLog,
)
from repro.workloads.generators import SocialGraphSpec, generate_social_graph
from repro.workloads.pattern_gen import PatternSpec, generate_pattern
from repro.workloads.update_gen import UpdateWorkloadSpec, generate_update_batch
from tests.conftest import make_random_graph, make_random_pattern


def observation(
    insertions=10,
    deletions=20,
    node_count=100,
    executed="coalesced",
    elapsed=0.25,
    backend="sparse",
):
    stats = BatchStatistics(
        batch_size=insertions + deletions,
        data_updates=insertions + deletions,
        insertions=insertions,
        deletions=deletions,
        node_count=node_count,
        backend=backend,
        partition_available=True,
    )
    return PlanObservation(
        statistics=stats,
        requested="auto",
        planned=executed,
        executed=executed,
        predicted_costs=DEFAULT_COST_MODEL.estimate(stats),
        elapsed_seconds=elapsed,
        algorithm="test",
    )


class TestPlanObservation:
    def test_dict_round_trip(self):
        original = observation()
        rebuilt = PlanObservation.from_dict(original.as_dict())
        assert rebuilt == original

    def test_predicted_cost_is_planned_strategy_estimate(self):
        obs = observation(executed="coalesced")
        assert obs.predicted_cost == pytest.approx(obs.predicted_costs["coalesced"])

    def test_features_key_groups_same_shape(self):
        assert observation(executed="coalesced").features_key == observation(
            executed="per-update"
        ).features_key
        assert observation(insertions=11).features_key != observation().features_key

    def test_unknown_statistics_field_rejected(self):
        payload = observation().as_dict()
        payload["statistics"]["surprise"] = 1
        with pytest.raises(ValueError):
            PlanObservation.from_dict(payload)


class TestTelemetryLog:
    def test_record_and_iterate(self):
        log = TelemetryLog()
        first = log.record(observation(elapsed=0.1))
        log.record(observation(elapsed=0.2))
        assert len(log) == 2
        assert log.observations()[0] == first
        assert [o.elapsed_seconds for o in log] == [0.1, 0.2]

    def test_bounded_retention_drops_oldest(self):
        log = TelemetryLog(retention=4)
        for i in range(10):
            log.record(observation(elapsed=float(i)))
        assert len(log) == 4
        assert log.total_recorded == 10
        assert log.dropped == 6
        assert [o.elapsed_seconds for o in log] == [6.0, 7.0, 8.0, 9.0]

    def test_invalid_retention_rejected(self):
        with pytest.raises(ValueError):
            TelemetryLog(retention=0)

    def test_save_load_round_trip(self, tmp_path):
        log = TelemetryLog(retention=16)
        for i in range(6):
            log.record(observation(insertions=i + 1, elapsed=0.01 * (i + 1)))
        path = tmp_path / "telemetry.json"
        log.save(path)
        loaded = TelemetryLog.load(path)
        assert loaded.observations() == log.observations()
        assert loaded.total_recorded == log.total_recorded
        assert loaded.as_dict() == log.as_dict()

    def test_load_rejects_unknown_format(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 999, "observations": []}')
        with pytest.raises(ValueError):
            TelemetryLog.load(path)

    def test_format_version_is_written(self, tmp_path):
        import json

        log = TelemetryLog()
        log.record(observation())
        path = tmp_path / "telemetry.json"
        log.save(path)
        assert json.loads(path.read_text())["format_version"] == TELEMETRY_FORMAT_VERSION


class TestAlgorithmEmission:
    """Every maintained batch emits one observation into the shared log."""

    def _instance(self, seed=3):
        data = generate_social_graph(
            SocialGraphSpec(name="tele", num_nodes=40, num_edges=120, seed=seed)
        )
        pattern = generate_pattern(
            PatternSpec(num_nodes=4, num_edges=4, labels=("PM", "SE", "TE"), seed=seed)
        )
        batch = generate_update_batch(
            data,
            pattern,
            UpdateWorkloadSpec(num_pattern_updates=0, num_data_updates=12, seed=seed),
        )
        return data, pattern, batch

    def test_observation_per_batch(self):
        data, pattern, batch = self._instance()
        log = TelemetryLog()
        engine = UAGPNM(pattern, data, telemetry=log)
        outcome = engine.subsequent_query(batch)
        assert len(log) == 1
        obs = log.observations()[0]
        assert obs.planned == outcome.stats.planned_strategy
        assert obs.elapsed_seconds == pytest.approx(outcome.stats.maintenance_seconds)
        assert obs.elapsed_seconds > 0
        assert obs.algorithm == engine.name
        assert obs.statistics.data_updates == len(batch.data_updates())

    def test_forced_coalesced_observation_attributes_executed(self):
        data, pattern, batch = self._instance()
        log = TelemetryLog()
        engine = UAGPNM(pattern, data, batch_plan="coalesced", telemetry=log)
        engine.subsequent_query(batch)
        (obs,) = log.observations()
        assert obs.planned == "coalesced"
        assert obs.executed == "coalesced"

    def test_inc_gpnm_emits_no_mismatched_observation(self):
        """INC-GPNM under a coalescing plan compiles but maintains
        per-update over the *compiled* stream — its timing does not
        match the plan's pre-compilation statistics, so no observation
        is emitted (a mislabelled one would bias the refit's per-update
        unit anchor)."""
        data, pattern, batch = self._instance()
        log = TelemetryLog()
        engine = IncGPNM(pattern, data, batch_plan="coalesced", telemetry=log)
        engine.subsequent_query(batch)
        assert len(log) == 0

    def test_inc_gpnm_per_update_plan_still_observes(self):
        data, pattern, batch = self._instance()
        log = TelemetryLog()
        engine = IncGPNM(pattern, data, batch_plan="per-update", telemetry=log)
        engine.subsequent_query(batch)
        (obs,) = log.observations()
        assert obs.planned == obs.executed == "per-update"
        assert obs.elapsed_seconds > 0

    def test_no_log_no_emission(self):
        data, pattern, batch = self._instance()
        engine = UAGPNM(pattern, data)
        outcome = engine.subsequent_query(batch)
        assert engine.telemetry is None
        assert outcome.stats.maintenance_seconds > 0

    def test_empty_batch_emits_nothing(self):
        pattern = make_random_pattern(seed=1)
        data = make_random_graph(seed=1)
        log = TelemetryLog()
        engine = UAGPNM(pattern, data, telemetry=log)
        engine.subsequent_query([])
        assert len(log) == 0

    def test_shared_log_across_engines(self):
        data, pattern, batch = self._instance()
        log = TelemetryLog()
        for plan in ("per-update", "coalesced"):
            engine = UAGPNM(pattern, data, batch_plan=plan, telemetry=log)
            engine.subsequent_query(batch)
        assert len(log) == 2
        assert {o.executed for o in log} == {"per-update", "coalesced"}
