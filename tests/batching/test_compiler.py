"""Unit tests for the update-batch compiler."""

import pytest

from repro.batching.compiler import compile_batch
from repro.graph.digraph import DataGraph
from repro.graph.errors import UpdateError
from repro.graph.pattern import PatternGraph
from repro.graph.updates import (
    NodeInsertion,
    UpdateKind,
    delete_data_edge,
    delete_data_node,
    delete_pattern_edge,
    insert_data_edge,
    insert_data_node,
    insert_pattern_edge,
)


def small_data_graph() -> DataGraph:
    return DataGraph(
        {name: "X" for name in "abcde"},
        [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")],
    )


class TestDuplicates:
    def test_repeated_edge_insertion_is_dropped(self):
        compiled = compile_batch([insert_data_edge("a", "c"), insert_data_edge("a", "c")])
        assert len(compiled) == 1
        assert compiled.report.duplicates_dropped == 1
        assert compiled.report.eliminated == 1

    def test_repeated_edge_deletion_is_dropped(self):
        compiled = compile_batch([delete_data_edge("a", "b"), delete_data_edge("a", "b")])
        assert len(compiled) == 1
        assert compiled.report.duplicates_dropped == 1

    def test_distinct_edges_survive(self):
        compiled = compile_batch([insert_data_edge("a", "c"), insert_data_edge("c", "a")])
        assert len(compiled) == 2
        assert compiled.report.is_noop


class TestCancellation:
    def test_insert_then_delete_cancels(self):
        compiled = compile_batch([insert_data_edge("a", "c"), delete_data_edge("a", "c")])
        assert len(compiled) == 0
        assert compiled.report.cancelled_ops == 2

    def test_delete_then_reinsert_cancels(self):
        compiled = compile_batch([delete_data_edge("a", "b"), insert_data_edge("a", "b")])
        assert len(compiled) == 0
        assert compiled.report.cancelled_ops == 2

    def test_insert_delete_insert_keeps_last(self):
        stream = [
            insert_data_edge("a", "c"),
            delete_data_edge("a", "c"),
            insert_data_edge("a", "c"),
        ]
        compiled = compile_batch(stream)
        assert list(compiled) == [stream[-1]]
        assert compiled.report.cancelled_ops == 2

    def test_node_insert_then_delete_cancels_and_cascades(self):
        stream = [
            insert_data_node("n", "X", [("a", "n")]),
            insert_data_edge("n", "b"),
            delete_data_node("n"),
        ]
        compiled = compile_batch(stream)
        assert len(compiled) == 0
        assert compiled.report.cancelled_ops == 2  # the node pair
        # the (n, b) edge insert and the carried (a, n) payload edge
        assert compiled.report.subsumed_ops == 2

    def test_pattern_bound_change_does_not_cancel(self):
        stream = [
            delete_pattern_edge("A", "B", bound=2),
            insert_pattern_edge("A", "B", bound=3),
        ]
        compiled = compile_batch(stream)
        assert len(compiled) == 2
        kinds = [update.kind for update in compiled]
        assert kinds == [UpdateKind.EDGE_DELETE, UpdateKind.EDGE_INSERT]

    def test_pattern_same_bound_cancels(self):
        stream = [
            delete_pattern_edge("A", "B", bound=2),
            insert_pattern_edge("A", "B", bound=2),
        ]
        compiled = compile_batch(stream)
        assert len(compiled) == 0

    def test_pattern_unknown_bound_is_kept(self):
        stream = [
            delete_pattern_edge("A", "B"),  # recorded bound unknown
            insert_pattern_edge("A", "B", bound=2),
        ]
        compiled = compile_batch(stream)
        assert len(compiled) == 2

    def test_node_resurrection_compiles(self):
        """Regression: delete-then-re-insert used to raise UpdateError."""
        compiled = compile_batch([delete_data_node("a", "X"), insert_data_node("a", "X")])
        kinds = [update.kind for update in compiled]
        assert kinds == [UpdateKind.NODE_DELETE, UpdateKind.NODE_INSERT]
        assert compiled.report.resurrections == 1


class TestSubsumption:
    def test_edge_delete_subsumed_by_node_delete(self):
        stream = [delete_data_edge("a", "b"), delete_data_node("b", "X")]
        compiled = compile_batch(stream)
        assert list(compiled) == [stream[1]]
        assert compiled.report.subsumed_ops == 1

    def test_edge_insert_to_deleted_node_is_dropped(self):
        stream = [insert_data_edge("c", "b"), delete_data_node("b", "X")]
        compiled = compile_batch(stream)
        assert list(compiled) == [stream[1]]
        assert compiled.report.subsumed_ops == 1

    def test_carried_edge_to_vanished_node_is_stripped(self):
        stream = [
            insert_data_node("ghost", "X"),
            insert_data_node("n", "X", [("n", "ghost"), ("n", "a")]),
            delete_data_node("ghost"),
        ]
        compiled = compile_batch(stream)
        assert len(compiled) == 1
        survivor = list(compiled)[0]
        assert isinstance(survivor, NodeInsertion)
        assert survivor.edges == (("n", "a"),)
        assert compiled.report.subsumed_ops == 1

    def test_carried_edge_to_net_deleted_node_is_stripped(self):
        """A later deletion of a payload edge's endpoint strips the payload."""
        stream = [
            insert_data_node("n", "X", [("n", "b")]),
            delete_data_node("b", "X"),
        ]
        compiled = compile_batch(stream)
        survivors = list(compiled)
        assert len(survivors) == 2
        node_insert = next(u for u in survivors if isinstance(u, NodeInsertion))
        assert node_insert.edges == ()
        assert compiled.report.subsumed_ops == 1

    def test_carried_edge_cancelled_by_later_edge_delete(self):
        """Deleting a payload-created edge cancels against the payload."""
        stream = [
            insert_data_node("n", "X", [("n", "a")]),
            delete_data_edge("n", "a"),
        ]
        compiled = compile_batch(stream)
        survivors = list(compiled)
        assert len(survivors) == 1
        assert isinstance(survivors[0], NodeInsertion)
        assert survivors[0].edges == ()
        assert compiled.report.cancelled_ops == 2

    def test_orphaned_payload_edge_survives_parent_cancellation(self):
        """A payload edge between pre-existing nodes outlives its parent.

        Deleting a node removes only its incident edges, so the carried
        (a, b) edge stays even though the inserting node vanishes.
        """
        stream = [
            insert_data_node("n", "X", [("a", "c")]),
            delete_data_node("n"),
        ]
        compiled = compile_batch(stream)
        survivors = list(compiled)
        assert len(survivors) == 1
        assert survivors[0].kind is UpdateKind.EDGE_INSERT
        assert (survivors[0].source, survivors[0].target) == ("a", "c")

        graph = small_data_graph()
        sequential = graph.copy()
        for update in stream:
            update.apply(sequential)
        coalesced = graph.copy()
        for update in compiled:
            update.apply(coalesced)
        assert coalesced == sequential


def apply_equivalent(base: DataGraph, stream, compiled) -> None:
    """Applying the compiled stream must produce the sequential graph."""
    sequential = base.copy()
    for update in stream:
        update.apply(sequential)
    coalesced = base.copy()
    for update in compiled:
        update.apply(coalesced)
    assert coalesced == sequential


class TestResurrection:
    """Within-batch delete-then-re-insert of a node (payload-aware)."""

    def test_same_labels(self):
        """The reborn node loses its old incident edges but keeps existing."""
        graph = small_data_graph()
        stream = [delete_data_node("b", "X"), insert_data_node("b", "X")]
        compiled = compile_batch(stream)
        apply_equivalent(graph, stream, compiled)
        result = graph.copy()
        for update in compiled:
            update.apply(result)
        assert result.has_node("b")
        assert not result.has_edge("a", "b")
        assert not result.has_edge("b", "c")

    def test_different_labels(self):
        graph = small_data_graph()
        stream = [delete_data_node("c", "X"), insert_data_node("c", "Y")]
        compiled = compile_batch(stream)
        apply_equivalent(graph, stream, compiled)
        result = graph.copy()
        for update in compiled:
            update.apply(result)
        assert result.labels_of("c") == ("Y",)
        assert compiled.report.resurrections == 1

    def test_payload_edges_are_emitted_after_the_rebirth(self):
        graph = small_data_graph()
        stream = [
            delete_data_node("b", "X"),
            insert_data_node("b", "X", [("b", "d"), ("a", "b")]),
        ]
        compiled = compile_batch(stream)
        survivors = list(compiled)
        # delete -> re-insert (payload stripped) -> standalone edge inserts
        assert [u.kind for u in survivors[:2]] == [
            UpdateKind.NODE_DELETE,
            UpdateKind.NODE_INSERT,
        ]
        assert survivors[1].edges == ()
        assert {(u.source, u.target) for u in survivors[2:]} == {("b", "d"), ("a", "b")}
        apply_equivalent(graph, stream, compiled)

    def test_late_edge_insert_to_reborn_node(self):
        graph = small_data_graph()
        stream = [
            delete_data_node("b", "X"),
            insert_data_node("b", "X"),
            insert_data_edge("b", "e"),
        ]
        compiled = compile_batch(stream)
        survivors = list(compiled)
        assert survivors[-1].kind is UpdateKind.EDGE_INSERT
        assert (survivors[-1].source, survivors[-1].target) == ("b", "e")
        apply_equivalent(graph, stream, compiled)

    def test_intermediate_churn_cancels(self):
        """del/ins/del/ins collapses to the first delete + final insert."""
        graph = small_data_graph()
        stream = [
            delete_data_node("d", "X"),
            insert_data_node("d", "X"),
            delete_data_node("d", "X"),
            insert_data_node("d", "Y"),
        ]
        compiled = compile_batch(stream)
        assert len(compiled) == 2
        assert compiled.report.cancelled_ops == 2
        assert compiled.report.resurrections == 1
        apply_equivalent(graph, stream, compiled)

    def test_edge_ops_on_old_incarnation_are_subsumed(self):
        graph = small_data_graph()
        stream = [
            delete_data_edge("a", "b"),
            delete_data_node("b", "X"),
            insert_data_node("b", "X"),
        ]
        compiled = compile_batch(stream)
        kinds = [update.kind for update in compiled]
        assert kinds == [UpdateKind.NODE_DELETE, UpdateKind.NODE_INSERT]
        assert compiled.report.subsumed_ops == 1
        apply_equivalent(graph, stream, compiled)

    def test_edge_between_two_resurrected_nodes(self):
        graph = small_data_graph()
        stream = [
            delete_data_node("b", "X"),
            delete_data_node("c", "X"),
            insert_data_node("c", "X"),
            insert_data_node("b", "X", [("b", "c")]),
        ]
        compiled = compile_batch(stream)
        survivors = list(compiled)
        # The (b, c) edge must apply after *both* rebirths.
        assert survivors[-1].kind is UpdateKind.EDGE_INSERT
        assert (survivors[-1].source, survivors[-1].target) == ("b", "c")
        apply_equivalent(graph, stream, compiled)

    def test_resurrection_interacts_with_fresh_inserts(self):
        graph = small_data_graph()
        stream = [
            insert_data_node("n", "X"),
            delete_data_node("e", "X"),
            insert_data_node("e", "X", [("n", "e")]),
            insert_data_edge("e", "a"),
        ]
        compiled = compile_batch(stream)
        apply_equivalent(graph, stream, compiled)

    @pytest.mark.parametrize("labels", ["X", "Y"])
    def test_resurrection_idempotent(self, labels):
        """Metamorphic: compile(compile(b)) == compile(b)."""
        stream = [
            delete_data_node("b", "X"),
            insert_data_node("b", labels, [("b", "d")]),
            insert_data_edge("a", "b"),
        ]
        once = compile_batch(stream)
        twice = compile_batch(once.batch)
        assert list(twice) == list(once)
        assert twice.report.is_noop


class TestIdempotence:
    """Metamorphic property: compilation is idempotent on any stream."""

    @pytest.mark.parametrize("seed", range(12))
    def test_randomised_streams(self, seed):
        from repro.workloads.generators import SocialGraphSpec, generate_social_graph
        from repro.workloads.pattern_gen import PatternSpec, generate_pattern
        from repro.workloads.update_gen import UpdateWorkloadSpec, generate_update_batch

        data = generate_social_graph(
            SocialGraphSpec(name=f"idem{seed}", num_nodes=30, num_edges=80, seed=seed)
        )
        pattern = generate_pattern(
            PatternSpec(num_nodes=4, num_edges=4, labels=("PM", "SE", "TE"), seed=seed)
        )
        batch = generate_update_batch(
            data,
            pattern,
            UpdateWorkloadSpec(num_pattern_updates=3, num_data_updates=16, seed=seed),
        )
        stream = list(batch)
        # Inject a resurrection on a third of the seeds: delete and
        # re-insert a node the generated batch does not delete.
        if seed % 3 == 0:
            deleted = {u.node for u in stream if u.kind is UpdateKind.NODE_DELETE}
            victim = sorted(
                (n for n in data.nodes() if n not in deleted), key=repr
            )[0]
            stream = stream + [
                delete_data_node(victim, data.labels_of(victim)),
                insert_data_node(victim, "PM"),
            ]
        once = compile_batch(stream)
        twice = compile_batch(once.batch)
        assert list(twice) == list(once)
        assert twice.report.is_noop


class TestCanonicalOrderAndApplicability:
    def test_group_order(self):
        stream = [
            delete_data_node("e", "X"),
            insert_data_edge("a", "c"),
            delete_data_edge("a", "b"),
            insert_data_node("n", "X", [("n", "a")]),
        ]
        compiled = compile_batch(stream)
        kinds = [update.kind for update in compiled]
        assert kinds == [
            UpdateKind.NODE_INSERT,
            UpdateKind.EDGE_DELETE,
            UpdateKind.EDGE_INSERT,
            UpdateKind.NODE_DELETE,
        ]

    def test_data_before_pattern(self):
        stream = [insert_pattern_edge("A", "B", 2), insert_data_edge("a", "c")]
        compiled = compile_batch(stream)
        graphs = [update.graph.value for update in compiled]
        assert graphs == ["data", "pattern"]

    def test_compiled_stream_is_applicable(self):
        """A messy but valid stream compiles to a directly applicable one."""
        graph = small_data_graph()
        stream = [
            insert_data_edge("a", "c"),
            delete_data_edge("a", "c"),  # cancels
            insert_data_node("n", "X", [("e", "n")]),
            insert_data_edge("n", "a"),
            delete_data_edge("b", "c"),
            insert_data_edge("b", "c"),  # cancels the delete
            delete_data_node("d", "X"),
            insert_data_edge("a", "e"),
        ]
        sequential = graph.copy()
        for update in stream:
            update.apply(sequential)
        compiled = compile_batch(stream)
        coalesced = graph.copy()
        for update in compiled:
            update.apply(coalesced)
        assert coalesced == sequential
        assert len(compiled) < len(stream)

    def test_idempotent(self):
        stream = [
            insert_data_edge("a", "c"),
            delete_data_edge("a", "c"),
            insert_data_node("n", "X"),
            delete_data_edge("c", "d"),
        ]
        once = compile_batch(stream)
        twice = compile_batch(once.batch)
        assert list(twice) == list(once)
        assert twice.report.is_noop

    def test_empty_batch(self):
        compiled = compile_batch([])
        assert len(compiled) == 0
        assert compiled.report.is_noop

    def test_pattern_survivors_apply(self):
        pattern = PatternGraph({"A": "X", "B": "Y"}, [("A", "B", 2)])
        stream = [
            delete_pattern_edge("A", "B", bound=2),
            insert_pattern_edge("A", "B", bound=3),  # survives as a bound change
            insert_pattern_edge("B", "A", 1),
            delete_pattern_edge("B", "A", bound=1),  # cancels
        ]
        compiled = compile_batch(stream)
        for update in compiled.pattern_updates():
            update.apply(pattern)
        assert pattern.bound("A", "B") == 3
        assert not pattern.has_edge("B", "A")
