"""Merge semantics of the coalesced ``SLen`` maintenance pass.

The contract under test (ISSUE satellite): the single merged
:class:`SLenDelta` of :func:`coalesce_slen` equals the *folded
composition* (:func:`fold_deltas`) of the deltas that sequential
per-update :func:`update_slen` maintenance produces — including
insert-then-delete cancellation and duplicate updates, which the batch
compiler removes before the coalesced pass ever sees them.
"""

import pytest

from repro.batching.coalesce import coalesce_slen
from repro.batching.compiler import compile_batch
from repro.graph.digraph import DataGraph
from repro.graph.errors import UpdateError
from repro.graph.updates import (
    delete_data_edge,
    delete_data_node,
    insert_data_edge,
    insert_data_node,
    insert_pattern_edge,
)
from repro.spl.incremental import fold_deltas, update_slen
from repro.spl.matrix import INF, SLenMatrix
from repro.workloads.generators import SocialGraphSpec, generate_social_graph
from repro.workloads.pattern_gen import PatternSpec, generate_pattern
from repro.workloads.update_gen import UpdateWorkloadSpec, generate_update_batch


def line_graph() -> DataGraph:
    return DataGraph(
        {name: "X" for name in "abcde"},
        [("a", "b"), ("b", "c"), ("c", "d"), ("d", "e")],
    )


def sequential_fold(graph: DataGraph, matrix: SLenMatrix, updates):
    """Apply ``updates`` one at a time; return the folded delta."""
    deltas = []
    for update in updates:
        update.apply(graph)
        deltas.append(update_slen(matrix, graph, update))
    return fold_deltas(deltas)


def coalesced(graph: DataGraph, matrix: SLenMatrix, updates):
    """Apply all of ``updates`` then run one coalesced pass."""
    for update in updates:
        update.apply(graph)
    return coalesce_slen(matrix, graph, updates)


def assert_delta_composition(stream, horizon=INF, base_graph=None):
    """Coalesced(compile(stream)) must equal fold(sequential(stream))."""
    base = base_graph if base_graph is not None else line_graph()
    g1, m1 = base.copy(), SLenMatrix.from_graph(base, horizon=horizon)
    folded = sequential_fold(g1, m1, list(stream))

    compiled = compile_batch(stream)
    g2, m2 = base.copy(), SLenMatrix.from_graph(base, horizon=horizon)
    outcome = coalesced(g2, m2, compiled.data_updates())

    assert g1 == g2
    assert m1 == m2
    assert m2 == SLenMatrix.from_graph(g2, horizon=horizon)
    assert outcome.delta.changed_pairs == folded.changed_pairs
    assert outcome.delta.structural_nodes == folded.structural_nodes
    assert outcome.delta.affected_nodes == folded.affected_nodes
    return outcome


class TestMergeSemantics:
    def test_pure_insertions(self):
        outcome = assert_delta_composition(
            [insert_data_edge("a", "d"), insert_data_edge("e", "a")]
        )
        assert outcome.relaxation_rounds >= 1

    def test_composing_insertions(self):
        """Two insertions forming a new path must compose in one sweep."""
        base = DataGraph({name: "X" for name in "pqrs"}, [("p", "q")])
        assert_delta_composition(
            [insert_data_edge("q", "r"), insert_data_edge("r", "s")],
            base_graph=base,
        )

    def test_pure_deletions_share_one_settle_per_source(self):
        outcome = assert_delta_composition(
            [delete_data_edge("b", "c"), delete_data_edge("d", "e")]
        )
        # Source "a" is hit by both deletions but settled only once.
        assert outcome.settled_sources == len(outcome.delta.recomputed_sources)

    def test_deletion_then_insertion_identity_pairs_are_dropped(self):
        """An insertion that repairs a deletion's damage leaves no pair."""
        base = DataGraph(
            {name: "X" for name in "abc"}, [("a", "b"), ("b", "c"), ("a", "c")]
        )
        # Deleting (b, c) worsens nothing net: (a, c) survives via the
        # direct edge, and the re-insert restores b's row exactly.
        stream = [delete_data_edge("b", "c"), insert_data_edge("b", "c")]
        g1, m1 = base.copy(), SLenMatrix.from_graph(base)
        folded = sequential_fold(g1, m1, stream)
        assert folded.changed_pairs == {}

        compiled = compile_batch(stream)
        assert len(compiled) == 0  # fully cancelled
        g2, m2 = base.copy(), SLenMatrix.from_graph(base)
        outcome = coalesced(g2, m2, compiled.data_updates())
        assert outcome.delta.changed_pairs == {}
        assert outcome.delta.is_empty
        assert m1 == m2

    def test_insert_then_delete_node_cancellation(self):
        stream = [
            insert_data_node("n", "X", [("e", "n"), ("n", "a")]),
            delete_data_node("n"),
        ]
        outcome = assert_delta_composition(stream)
        assert outcome.delta.structural_nodes == frozenset()
        assert outcome.delta.is_empty

    def test_duplicate_updates_are_compiled_away(self):
        """Literal duplicates reach the coalesced path only once."""
        base = line_graph()
        # The sequential reference applies the deduplicated stream (a
        # literal duplicate is not sequentially applicable at all).
        reference = [insert_data_edge("a", "e")]
        g1, m1 = base.copy(), SLenMatrix.from_graph(base)
        folded = sequential_fold(g1, m1, reference)

        duplicated = [insert_data_edge("a", "e"), insert_data_edge("a", "e")]
        compiled = compile_batch(duplicated)
        assert compiled.report.duplicates_dropped == 1
        g2, m2 = base.copy(), SLenMatrix.from_graph(base)
        outcome = coalesced(g2, m2, compiled.data_updates())
        assert outcome.delta.changed_pairs == folded.changed_pairs
        assert m1 == m2

    def test_node_deletion_records_inf_transitions(self):
        outcome = assert_delta_composition([delete_data_node("c", "X")])
        delta = outcome.delta
        assert delta.changed_pairs[("c", "d")] == (1, INF)
        assert delta.changed_pairs[("b", "c")] == (1, INF)
        assert "c" in delta.structural_nodes
        assert "c" in delta.affected_nodes

    def test_mixed_batch_with_horizon(self):
        stream = [
            insert_data_node("n", "X", [("n", "a")]),
            delete_data_edge("c", "d"),
            insert_data_edge("b", "e"),
            delete_data_node("e", "X"),
        ]
        # The stream deletes "e" after inserting an edge towards it; the
        # compiler subsumes that insert, the sequential reference applies
        # the raw (valid) stream.  Both at full and bounded horizon.
        assert_delta_composition(stream)
        assert_delta_composition(stream, horizon=3)

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("horizon", [INF, 4])
    def test_randomised_workloads(self, seed, horizon):
        data = generate_social_graph(
            SocialGraphSpec(name=f"co{seed}", num_nodes=36, num_edges=90, seed=seed)
        )
        pattern = generate_pattern(
            PatternSpec(num_nodes=5, num_edges=5, labels=("PM", "SE", "TE"), seed=seed)
        )
        batch = generate_update_batch(
            data,
            pattern,
            UpdateWorkloadSpec(num_pattern_updates=0, num_data_updates=24, seed=seed),
        )
        assert_delta_composition(batch.data_updates(), horizon=horizon, base_graph=data)


class TestPayloadEdgeInteractions:
    """Regressions: carried payload edges reconciled with later deletions."""

    def test_payload_edge_endpoint_deleted_later(self):
        stream = [
            insert_data_node("n", "X", [("n", "b")]),
            delete_data_node("b", "X"),
        ]
        assert_delta_composition(stream)

    def test_payload_edge_deleted_later(self):
        stream = [
            insert_data_node("n", "X", [("n", "a"), ("b", "n")]),
            delete_data_edge("n", "a"),
        ]
        assert_delta_composition(stream)

    def test_orphaned_payload_edge(self):
        stream = [
            insert_data_node("n", "X", [("a", "c")]),
            delete_data_node("n"),
        ]
        base = DataGraph({name: "X" for name in "abc"}, [("a", "b"), ("b", "c")])
        assert_delta_composition(stream, base_graph=base)

    def test_node_churn_through_the_algorithm_surface(self):
        """The same streams must work end-to-end with coalesce_updates on."""
        from repro.algorithms.scratch import BatchGPNM
        from repro.algorithms.ua_gpnm import UAGPNM
        from repro.graph.pattern import PatternGraph

        data = line_graph()
        pattern = PatternGraph({"P": "X", "Q": "X"}, [("P", "Q", 2)])
        batch = [
            insert_data_node("n", "X", [("n", "b")]),
            insert_data_node("m", "X", [("a", "m")]),
            delete_data_node("b", "X"),
            delete_data_edge("a", "m"),
        ]
        oracle = BatchGPNM(pattern, data)
        expected = oracle.subsequent_query(list(batch)).result
        # A forced plan takes the coalesced path even for this tiny
        # batch (the auto plan falls back to per-update below the
        # benchmarked crossover).
        engine = UAGPNM(pattern, data, batch_plan="coalesced")
        outcome = engine.subsequent_query(list(batch))
        assert outcome.result == expected
        assert engine.slen == oracle.slen


class TestErrorPaths:
    def test_rejects_pattern_updates(self):
        graph = line_graph()
        with pytest.raises(UpdateError):
            coalesce_slen(
                SLenMatrix.from_graph(graph), graph, [insert_pattern_edge("A", "B", 2)]
            )

    def test_requires_applied_insertion(self):
        graph = line_graph()
        with pytest.raises(UpdateError):
            coalesce_slen(
                SLenMatrix.from_graph(graph), graph, [insert_data_edge("a", "e")]
            )

    def test_requires_applied_deletion(self):
        graph = line_graph()
        with pytest.raises(UpdateError):
            coalesce_slen(
                SLenMatrix.from_graph(graph), graph, [delete_data_edge("a", "b")]
            )

    def test_requires_applied_node_deletion(self):
        graph = line_graph()
        with pytest.raises(UpdateError):
            coalesce_slen(
                SLenMatrix.from_graph(graph), graph, [delete_data_node("a", "X")]
            )
