"""End-to-end multi-pattern smoke test for ``ua-gpnm serve --patterns``.

A *real* server process exercising the whole subscription surface over
TCP, which no unit test covers end to end.  The script

1. writes a pattern-set file and starts ``ua-gpnm serve --patterns`` on
   an ephemeral port, asserting the standing-pattern banner,
2. reads the standing pattern through the pattern-addressed ``matches``
   op,
3. subscribes a fresh pattern (inline doc, over labels the dataset does
   not use) on a persistent connection, streams an update that creates
   its first match, and waits for the per-pattern ``notify`` push,
4. unsubscribes with ``drop`` and asserts the pattern stops serving,
5. shuts down with SIGTERM and expects exit code 0.

Exits non-zero with a diagnostic on any failure.  Used by the CI
``subscriptions`` job; run locally with::

    python scripts/subscriptions_smoke.py
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import time
from pathlib import Path
from tempfile import TemporaryDirectory

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")

READY_TIMEOUT = 60.0
NOTIFY_TIMEOUT = 30.0

PATTERN_SET = {
    "patterns": [
        {
            "pattern_id": "standing",
            "pattern": {
                "kind": "pattern_graph",
                "nodes": [{"id": "p0", "label": "0"}, {"id": "p1", "label": "1"}],
                "edges": [["p0", "p1", 2]],
            },
            "k": 3,
        }
    ]
}

#: The subscribed-at-runtime pattern uses labels the dataset does not
#: carry, so its relation starts empty and the smoke update below
#: creates its very first match — a guaranteed non-empty push delta.
INLINE_PATTERN = {
    "kind": "pattern_graph",
    "nodes": [{"id": "p0", "label": "smokeA"}, {"id": "p1", "label": "smokeB"}],
    "edges": [["p0", "p1", 1]],
}


def start_serve(patterns_file: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--preset",
            "tiny",
            "--dataset",
            "email-EU-core",
            "--port",
            "0",
            "--patterns",
            patterns_file,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=str(REPO),
    )


def wait_for_ready(process: subprocess.Popen) -> int:
    """Read stderr until the address banner; assert the patterns banner."""
    deadline = time.monotonic() + READY_TIMEOUT
    lines: list[str] = []
    saw_patterns = False
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        if not line:
            if process.poll() is not None:
                raise AssertionError(
                    f"serve exited early ({process.returncode}): {''.join(lines)}"
                )
            continue
        lines.append(line)
        if "standing pattern(s) subscribed" in line:
            assert line.startswith("[serve] 1 "), f"wrong pattern count: {line}"
            saw_patterns = True
        if line.startswith("[serve] graph") and " on " in line:
            assert saw_patterns, f"no standing-pattern banner before: {''.join(lines)}"
            return int(line.rsplit(":", 1)[1].strip())
    raise AssertionError(f"serve never became ready: {''.join(lines)}")


def call(port: int, request: dict, timeout: float = 10.0) -> dict:
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as conn:
        conn.sendall(json.dumps(request).encode() + b"\n")
        reply = conn.makefile().readline()
    return json.loads(reply)


class Connection:
    """A persistent JSON-lines connection (subscribe + notify)."""

    def __init__(self, port: int):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=NOTIFY_TIMEOUT)
        self.reader = self.sock.makefile()

    def call(self, request: dict) -> dict:
        self.sock.sendall(json.dumps(request).encode() + b"\n")
        return self.read_line()

    def read_line(self) -> dict:
        line = self.reader.readline()
        assert line, "connection closed by server"
        return json.loads(line)

    def close(self) -> None:
        self.reader.close()
        self.sock.close()


def main() -> int:
    with TemporaryDirectory(prefix="subscriptions-smoke-") as scratch:
        patterns_file = Path(scratch) / "patterns.json"
        patterns_file.write_text(json.dumps(PATTERN_SET))

        server = start_serve(str(patterns_file))
        try:
            port = wait_for_ready(server)
            print(f"[smoke] serve ready on port {port} with 1 standing pattern")

            # 1. The file's standing pattern answers pattern-addressed reads.
            matches = call(
                port,
                {"op": "matches", "graph": "email-EU-core", "pattern_id": "standing"},
            )
            assert matches.get("ok"), f"standing pattern does not serve: {matches}"

            # 2. Subscribe a fresh pattern and receive its first push.
            conn = Connection(port)
            subscribed = conn.call(
                {
                    "op": "subscribe",
                    "graph": "email-EU-core",
                    "pattern_id": "smoke",
                    "pattern": INLINE_PATTERN,
                    "k": 2,
                }
            )
            assert subscribed.get("ok"), f"subscribe failed: {subscribed}"

            receipt = call(
                port,
                {
                    "op": "update",
                    "graph": "email-EU-core",
                    "inserts": [
                        {"type": "node", "node": "smoke-a", "labels": ["smokeA"]},
                        {"type": "node", "node": "smoke-b", "labels": ["smokeB"]},
                        {"type": "edge", "source": "smoke-a", "target": "smoke-b"},
                    ],
                },
            )
            assert receipt.get("ok") and receipt.get("accepted") == 3, (
                f"update not acknowledged: {receipt}"
            )

            notify = conn.read_line()
            assert notify.get("kind") == "notify", f"expected notify, got: {notify}"
            assert notify.get("pattern_id") == "smoke", f"wrong pattern: {notify}"
            assert notify["added"].get("p0") == ["smoke-a"], f"wrong delta: {notify}"
            assert notify["added"].get("p1") == ["smoke-b"], f"wrong delta: {notify}"
            print(f"[smoke] notify received at version {notify.get('version')}")

            # 3. Drop the subscription; it must stop serving.
            dropped = conn.call(
                {
                    "op": "unsubscribe",
                    "graph": "email-EU-core",
                    "pattern_id": "smoke",
                    "drop": True,
                }
            )
            assert dropped.get("ok") and dropped.get("dropped"), (
                f"unsubscribe failed: {dropped}"
            )
            gone = call(
                port,
                {"op": "matches", "graph": "email-EU-core", "pattern_id": "smoke"},
            )
            assert gone.get("ok") is False, f"dropped pattern still serves: {gone}"
            conn.close()

            # 4. Graceful shutdown.
            server.terminate()
            _, stderr = server.communicate(timeout=30)
            assert server.returncode == 0, (
                f"graceful shutdown failed ({server.returncode}): {stderr}"
            )
        finally:
            if server.poll() is None:
                server.kill()
                server.communicate()

    print("[smoke] multi-pattern subscription smoke passed")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except AssertionError as failure:
        print(f"[smoke] FAILED: {failure}", file=sys.stderr)
        sys.exit(1)
