"""End-to-end record & replay smoke test for ``ua-gpnm replay``.

A *real* out-of-process replay of a journal captured from a live
session, which no unit test covers end to end.  The script

1. runs a journaled-from-midlife multi-pattern session: a service with
   **no** journal directory ingests traffic, then ``start_capture``
   turns recording on without a restart; post-capture traffic includes
   mid-run subscribe/unsubscribe control records,
2. replays a prefix of the captured window (``--to-seq``) and the full
   window under the dense SLen backend through ``ua-gpnm replay`` in a
   subprocess, asserting the run summaries,
3. re-runs with ``--verify``: faithful reference vs the standard
   five-candidate sweep (dense backend, three forced batch plans,
   re-admission), asserting the all-equivalent banner,
4. cross-checks the ``--out`` JSON report against the live session
   (update counts, per-candidate clean verification).

Exits non-zero with a diagnostic on any failure.  Used by the CI
``replay`` job; run locally with::

    python scripts/replay_smoke.py
"""

from __future__ import annotations

import asyncio
import json
import os
import subprocess
import sys
from pathlib import Path
from tempfile import TemporaryDirectory

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")
sys.path.insert(0, SRC)

from repro.service import ServiceConfig, StreamingUpdateService  # noqa: E402
from repro.workloads import (  # noqa: E402
    PatternSpec,
    SocialGraphSpec,
    generate_pattern,
    generate_social_graph,
)
from repro.workloads.update_gen import generate_payload_stream  # noqa: E402

SEED = 417
PRE_PAYLOADS = 3
POST_PAYLOADS = 10
UPDATES_PER_PAYLOAD = 4
CLI_TIMEOUT = 300


async def record(capture_dir: Path) -> dict:
    """The live session: capture turned on mid-life, no restart."""
    graph = generate_social_graph(
        SocialGraphSpec(name="smoke", num_nodes=64, num_edges=240, seed=SEED)
    )
    labels = sorted(graph.labels())
    patterns = [
        (
            f"p{index}",
            generate_pattern(
                PatternSpec(
                    num_nodes=2 + index,
                    num_edges=2 + index,
                    labels=labels,
                    seed=SEED + index,
                )
            ),
        )
        for index in range(3)
    ]
    service = StreamingUpdateService(
        ServiceConfig(deadline_seconds=0.0, max_buffer=10_000, coalesce_min_batch=10_000)
    )
    await service.register("smoke", graph)
    for pattern_id, pattern in patterns[:2]:
        await service.subscribe("smoke", pattern_id, pattern, k=3)

    # Pre-capture traffic settles before the hook turns on: it must end
    # up inside the capture snapshot, never the replayed stream.
    for payload in generate_payload_stream(
        graph, payloads=PRE_PAYLOADS, updates_per_payload=UPDATES_PER_PAYLOAD, seed=SEED
    ):
        receipt = await service.submit("smoke", payload)
        assert receipt.rejected == 0, f"pre-capture rejection: {receipt}"
    await service.drain()

    info = await service.start_capture("smoke", capture_dir)
    # Fresh generator seeded from the *current* graph so the replayed
    # stream stays whole-stream admissible.
    post = list(
        generate_payload_stream(
            service.snapshot("smoke").data.copy(),
            payloads=POST_PAYLOADS,
            updates_per_payload=UPDATES_PER_PAYLOAD,
            seed=SEED + 99,
        )
    )
    for index, payload in enumerate(post):
        receipt = await service.submit("smoke", payload)
        assert receipt.rejected == 0, f"post-capture rejection: {receipt}"
        if index == POST_PAYLOADS // 2:
            # Mid-run control records: the window must reproduce them.
            await service.unsubscribe("smoke", patterns[1][0])
            await service.subscribe("smoke", patterns[2][0], patterns[2][1], k=2)
    await service.drain()
    errors = [repr(error) for _, error in service.errors]
    await service.close()
    assert not errors, f"live session recorded errors: {errors}"
    assert Path(info["path"]).exists(), f"no capture journal at {info['path']}"
    return info


def run_replay(journal_dir: Path, *argv: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "replay",
            "--journal-dir",
            str(journal_dir),
            *argv,
        ],
        env=env,
        capture_output=True,
        text=True,
        cwd=str(REPO),
        timeout=CLI_TIMEOUT,
    )


def main() -> int:
    with TemporaryDirectory(prefix="replay-smoke-") as scratch:
        capture_dir = Path(scratch) / "capture"
        capture_dir.mkdir()
        info = asyncio.run(record(capture_dir))
        print(
            f"[smoke] captured seqs [{info['base_seq']}, {info['last_seq']}] "
            f"into {info['path']}"
        )

        # 1. A prefix window (--to-seq) replays fewer settles than the
        #    full window — seq bounding works through the CLI.
        prefix = run_replay(capture_dir, "--to-seq", "5")
        assert prefix.returncode == 0, f"prefix replay failed: {prefix.stderr}"
        assert "[replay] faithful:" in prefix.stdout, f"no summary: {prefix.stdout}"
        print(f"[smoke] prefix replay: {prefix.stdout.strip().splitlines()[-1]}")

        # 2. Full window, overridden configuration.
        dense = run_replay(capture_dir, "--slen-backend", "dense")
        assert dense.returncode == 0, f"dense replay failed: {dense.stderr}"
        dense_summary = dense.stdout.strip().splitlines()[-1]
        assert "faithful" in dense_summary, f"unexpected summary: {dense.stdout}"
        print(f"[smoke] dense replay: {dense_summary}")

        # 3. The differential sweep must come back all-equivalent.
        report_path = Path(scratch) / "report.json"
        verify = run_replay(capture_dir, "--verify", "--out", str(report_path))
        assert verify.returncode == 0, (
            f"verify failed ({verify.returncode}):\n{verify.stdout}\n{verify.stderr}"
        )
        assert "all 5 candidate(s) equivalent" in verify.stderr, (
            f"no all-clear banner: {verify.stderr}"
        )

        # 4. The JSON report agrees with the live session.
        report = json.loads(report_path.read_text())
        window = report["window"]
        expected_updates = POST_PAYLOADS * UPDATES_PER_PAYLOAD
        assert window["updates"] == expected_updates, (
            f"window holds {window['updates']} updates, "
            f"expected the full {expected_updates}-update captured stream"
        )
        assert len(report["candidates"]) == 5, report["candidates"]
        for candidate in report["candidates"]:
            verdict = candidate["report"]
            assert verdict["ok"], (
                f"candidate {candidate['overrides']} diverged: "
                f"{verdict['mismatches']}"
            )
        compared = sum(c["report"]["patterns_compared"] for c in report["candidates"])
        assert compared > 0, "verification was vacuous: no pattern states compared"
        print(
            f"[smoke] verify: 5 candidate(s) equivalent, "
            f"{compared} pattern state(s) compared"
        )

    print("[smoke] record & replay smoke passed")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except AssertionError as failure:
        print(f"[smoke] FAILED: {failure}", file=sys.stderr)
        sys.exit(1)
