"""End-to-end kill -9 / recover smoke test for ``ua-gpnm serve``.

The one durability claim a unit test cannot make: a *real* server
process, killed with an uncatchable SIGKILL mid-flight, loses nothing
that was acknowledged.  The script

1. starts ``ua-gpnm serve --journal-dir`` on an ephemeral port,
2. submits one payload (two new nodes and an edge between them) and
   waits for the acknowledgement — the durability promise,
3. kills the process with SIGKILL (no drain, no atexit, no flush),
4. restarts the server on the same journal directory,
5. asserts the recovery banner reports the journaled deltas and that
   the recovered, settled graph answers ``slen`` for the new edge,
6. shuts the second server down gracefully and expects exit code 0.

Exits non-zero with a diagnostic on any failure.  Used by the CI
``faults`` job; run locally with::

    python scripts/kill_recover_smoke.py
"""

from __future__ import annotations

import json
import os
import socket
import subprocess
import sys
import time
from pathlib import Path
from tempfile import TemporaryDirectory

REPO = Path(__file__).resolve().parent.parent
SRC = str(REPO / "src")

READY_TIMEOUT = 60.0
SETTLE_TIMEOUT = 30.0


def start_serve(journal_dir: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro.cli",
            "serve",
            "--preset",
            "tiny",
            "--dataset",
            "email-EU-core",
            "--port",
            "0",
            "--journal-dir",
            journal_dir,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=str(REPO),
    )


def wait_for_ready(process: subprocess.Popen) -> tuple[int, str]:
    """Read stderr until the ready banner; return (port, journal banner)."""
    deadline = time.monotonic() + READY_TIMEOUT
    lines: list[str] = []
    port = None
    while time.monotonic() < deadline:
        line = process.stderr.readline()
        if not line:
            if process.poll() is not None:
                raise AssertionError(
                    f"serve exited early ({process.returncode}): {''.join(lines)}"
                )
            continue
        lines.append(line)
        if port is None and " on " in line and line.startswith("[serve] graph"):
            port = int(line.rsplit(":", 1)[1].strip())
            continue
        if port is not None and line.startswith("[serve] journal"):
            return port, line
    raise AssertionError(f"serve never became ready: {''.join(lines)}")


def call(port: int, request: dict, timeout: float = 10.0) -> dict:
    with socket.create_connection(("127.0.0.1", port), timeout=timeout) as conn:
        conn.sendall(json.dumps(request).encode() + b"\n")
        reply = conn.makefile().readline()
    return json.loads(reply)


def wait_for_settle(port: int, source: str, target: str) -> None:
    """Poll slen until the recovered edge is visible in the settled state."""
    deadline = time.monotonic() + SETTLE_TIMEOUT
    last = None
    while time.monotonic() < deadline:
        last = call(port, {"op": "slen", "graph": "email-EU-core", "source": source, "target": target})
        if last.get("ok") and last.get("distance") == 1:
            return
        time.sleep(0.1)
    raise AssertionError(f"recovered edge never settled: {last}")


def main() -> int:
    with TemporaryDirectory(prefix="kill-recover-smoke-") as scratch:
        journal_dir = str(Path(scratch) / "journals")

        # --- first life: accept a payload, then die without warning ----
        victim = start_serve(journal_dir)
        try:
            port, banner = wait_for_ready(victim)
            assert "recovered 0 delta(s)" in banner, f"fresh journal not empty: {banner}"
            receipt = call(
                port,
                {
                    "op": "update",
                    "graph": "email-EU-core",
                    "inserts": [
                        {"type": "node", "node": "smoke-a", "labels": ["0"]},
                        {"type": "node", "node": "smoke-b", "labels": ["0"]},
                        {"type": "edge", "source": "smoke-a", "target": "smoke-b"},
                    ],
                },
            )
            assert receipt.get("ok") and receipt.get("accepted") == 3, (
                f"payload not acknowledged: {receipt}"
            )
            print(f"[smoke] payload acknowledged by pid {victim.pid}; sending SIGKILL")
        finally:
            victim.kill()  # SIGKILL: no drain, no cleanup
            victim.communicate()

        # --- second life: recover from the journal --------------------
        survivor = start_serve(journal_dir)
        try:
            port, banner = wait_for_ready(survivor)
            print(f"[smoke] {banner.strip()}")
            assert "recovered 3 delta(s)" in banner, (
                f"journal tail not replayed: {banner}"
            )
            wait_for_settle(port, "smoke-a", "smoke-b")
            stats = call(port, {"op": "stats", "graph": "email-EU-core"})
            assert stats.get("ok") and stats.get("recovered") == 3, (
                f"recovery counters wrong: {stats}"
            )
            survivor.terminate()
            _, stderr = survivor.communicate(timeout=30)
            assert survivor.returncode == 0, (
                f"graceful shutdown failed ({survivor.returncode}): {stderr}"
            )
        finally:
            if survivor.poll() is None:
                survivor.kill()
                survivor.communicate()

    print("[smoke] kill -9 / recover smoke passed")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except AssertionError as failure:
        print(f"[smoke] FAILED: {failure}", file=sys.stderr)
        sys.exit(1)
